package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	quantumdb "repro"
	"repro/internal/value"
)

// This file is the binary wire protocol: length-prefixed CRC-framed
// request/response encoding, negotiated per connection by a magic
// preamble (handle peeks; absent magic falls through to JSON lines).
// The value payloads reuse the WAL's alloc-free binary machinery
// (value.AppendBinary / value.DecodeBinary), so a row travels in the
// same form the log stores it.
//
// Frame layout (all integers little-endian unless a field says
// otherwise; values use their own big-endian/uvarint encoding):
//
//	+----------+------------------------------+----------+
//	| len u32  | body (len bytes)             | crc u32  |
//	+----------+------------------------------+----------+
//	body = | req id u64 | op code u8 | payload |
//
// crc is CRC-32C (Castagnoli) over the body, the same polynomial the
// WAL frames with. The request ID is chosen by the client and echoed
// verbatim on the response frame — the pipelining handle: responses
// complete out of order and the ID is how a pipelined client matches
// them back to calls. The payload is the op-specific field encoding
// (appendRequest/appendResponse below).

// frameMagic opens a binary-protocol connection: the client sends it
// immediately after connect, the server echoes it as the accept. A
// JSON-lines client's first byte is '{' (or whitespace), never 'Q', so
// the server can sniff the first 4 bytes and fall back transparently.
const frameMagic = "QDB\x01"

// maxFrameBody bounds one frame's declared body length; a length field
// above it is rejected before any allocation. Sized for repl.bootstrap
// images, far above any request.
const maxFrameBody = 64 << 20

// frameChunk is the read-granularity for frame bodies: a corrupt length
// field can claim up to maxFrameBody, so the body is read (and the
// buffer grown) in bounded steps — a truncated stream errors out after
// at most one chunk of over-allocation instead of len bytes.
const frameChunk = 64 << 10

// frameHeader is the fixed prefix of a frame body: 8-byte request ID
// plus 1-byte op code.
const frameHeader = 9

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// opCodes maps protocol verbs to their wire codes; 0 is reserved as
// invalid. Codes are append-only — reusing one would let an old client
// misread a new server.
var opCodes = map[string]byte{
	"create": 1, "exec": 2, "txn": 3, "etxn": 4, "sql": 5,
	"read": 6, "snapread": 7, "preview": 8, "ground": 9,
	"groundall": 10, "pending": 11, "stats": 12, "ping": 13,
	"lag": 14, "repl.bootstrap": 15, "repl.pull": 16,
	"repl.fence": 17, "promote": 18, "batch": 19,
}

var opNames = func() map[byte]string {
	m := make(map[byte]string, len(opCodes))
	for name, code := range opCodes {
		m[code] = name
	}
	return m
}()

// beginFrame starts a frame in dst: length placeholder, request ID, op
// code. The payload is appended by the caller, then finishFrame seals
// it. dst should be a reused per-connection buffer (sliced to zero).
func beginFrame(dst []byte, id uint64, op byte) []byte {
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	return append(dst, op)
}

// finishFrame back-patches the length prefix and appends the CRC.
func finishFrame(dst []byte) []byte {
	body := dst[4:]
	binary.LittleEndian.PutUint32(dst[:4], uint32(len(body)))
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, frameCRC))
}

// readFrame reads one frame from br into buf (reused across calls),
// returning the request ID, op code, and payload. The payload aliases
// the returned buffer — callers must finish decoding (which copies out
// strings and byte fields) before the next readFrame on the same
// buffer. Corrupt lengths, truncated frames, and CRC mismatches all
// error without panicking and without allocating past the declared
// (capped) size.
func readFrame(br *bufio.Reader, buf []byte) (id uint64, op byte, payload, nbuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < frameHeader || n > maxFrameBody {
		return 0, 0, nil, buf, fmt.Errorf("server: frame body length %d out of range", n)
	}
	buf = buf[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, 0, nil, buf, err
		}
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, buf, err
	}
	if got, want := crc32.Checksum(buf, frameCRC), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, 0, nil, buf, fmt.Errorf("server: frame CRC mismatch (got %08x want %08x)", got, want)
	}
	id = binary.LittleEndian.Uint64(buf[:8])
	return id, buf[8], buf[frameHeader:], buf, nil
}

// wireBuf is a bounds-checked decode cursor over one frame payload.
type wireBuf struct{ b []byte }

func (r *wireBuf) remaining() int { return len(r.b) }

func (r *wireBuf) uvarint() (uint64, error) {
	n, w := binary.Uvarint(r.b)
	if w <= 0 {
		return 0, fmt.Errorf("server: frame decode: bad uvarint")
	}
	r.b = r.b[w:]
	return n, nil
}

func (r *wireBuf) byteVal() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("server: frame decode: short buffer")
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c, nil
}

// str reads a uvarint-prefixed string. The returned string is a copy,
// so it survives frame-buffer reuse.
func (r *wireBuf) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) {
		return "", fmt.Errorf("server: frame decode: string length %d exceeds payload", n)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// bytes reads a uvarint-prefixed byte field, copied out of the frame
// buffer. A zero length decodes to nil.
func (r *wireBuf) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("server: frame decode: byte field length %d exceeds payload", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out, nil
}

// count reads a uvarint element count and validates it against the
// bytes left, each element costing at least min bytes — the allocation
// guard that keeps a corrupt count from provoking a giant make().
func (r *wireBuf) count(min int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(r.b)/min) {
		return 0, fmt.Errorf("server: frame decode: count %d exceeds payload", n)
	}
	return int(n), nil
}

func (r *wireBuf) value() (value.Value, error) {
	v, n, err := value.DecodeBinary(r.b)
	if err != nil {
		return value.Value{}, fmt.Errorf("server: frame decode: %w", err)
	}
	r.b = r.b[n:]
	return v, nil
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendWireBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendRequest encodes req's fields (minus Op, which rides in the
// frame header as the op code) onto dst. Field order is fixed and
// append-only; absent fields encode as zero values, so the payload of
// a ping is a handful of zero bytes, not a schema.
func appendRequest(dst []byte, req *Request) []byte {
	dst = appendWireString(dst, req.Txn)
	dst = appendWireString(dst, req.Query)
	dst = appendWireString(dst, req.Facts)
	dst = appendWireString(dst, req.Tag)
	dst = appendWireString(dst, req.Partner)
	dst = appendWireString(dst, req.Addr)
	dst = binary.AppendUvarint(dst, uint64(req.ID))
	dst = binary.AppendUvarint(dst, req.After)
	dst = binary.AppendUvarint(dst, req.Term)
	dst = binary.AppendUvarint(dst, uint64(req.WaitMS))
	if req.Force {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	if t := req.Table; t != nil {
		dst = append(dst, 1)
		dst = appendWireString(dst, t.Name)
		dst = binary.AppendUvarint(dst, uint64(len(t.Columns)))
		for _, c := range t.Columns {
			dst = appendWireString(dst, c)
		}
		dst = binary.AppendUvarint(dst, uint64(len(t.Key)))
		for _, k := range t.Key {
			dst = binary.AppendUvarint(dst, uint64(k))
		}
		dst = binary.AppendUvarint(dst, uint64(len(t.Indexes)))
		for _, idx := range t.Indexes {
			dst = binary.AppendUvarint(dst, uint64(len(idx)))
			for _, k := range idx {
				dst = binary.AppendUvarint(dst, uint64(k))
			}
		}
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Txns)))
	for _, t := range req.Txns {
		dst = appendWireString(dst, t)
	}
	return dst
}

// decodeRequest parses a frame payload into a Request. It never panics
// on corrupt input and bounds every allocation by the payload length.
func decodeRequest(op byte, payload []byte) (Request, error) {
	name, ok := opNames[op]
	if !ok {
		return Request{}, fmt.Errorf("server: frame decode: unknown op code %d", op)
	}
	req := Request{Op: name}
	r := wireBuf{payload}
	var err error
	if req.Txn, err = r.str(); err != nil {
		return Request{}, err
	}
	if req.Query, err = r.str(); err != nil {
		return Request{}, err
	}
	if req.Facts, err = r.str(); err != nil {
		return Request{}, err
	}
	if req.Tag, err = r.str(); err != nil {
		return Request{}, err
	}
	if req.Partner, err = r.str(); err != nil {
		return Request{}, err
	}
	if req.Addr, err = r.str(); err != nil {
		return Request{}, err
	}
	id, err := r.uvarint()
	if err != nil {
		return Request{}, err
	}
	req.ID = int64(id)
	if req.After, err = r.uvarint(); err != nil {
		return Request{}, err
	}
	if req.Term, err = r.uvarint(); err != nil {
		return Request{}, err
	}
	waitMS, err := r.uvarint()
	if err != nil {
		return Request{}, err
	}
	req.WaitMS = int64(waitMS)
	force, err := r.byteVal()
	if err != nil {
		return Request{}, err
	}
	req.Force = force != 0
	hasTable, err := r.byteVal()
	if err != nil {
		return Request{}, err
	}
	if hasTable != 0 {
		t := &TableSpec{}
		if t.Name, err = r.str(); err != nil {
			return Request{}, err
		}
		ncols, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		t.Columns = make([]string, ncols)
		for i := range t.Columns {
			if t.Columns[i], err = r.str(); err != nil {
				return Request{}, err
			}
		}
		nkey, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		if nkey > 0 {
			t.Key = make([]int, nkey)
			for i := range t.Key {
				k, err := r.uvarint()
				if err != nil {
					return Request{}, err
				}
				t.Key[i] = int(k)
			}
		}
		nidx, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		if nidx > 0 {
			t.Indexes = make([][]int, nidx)
			for i := range t.Indexes {
				n, err := r.count(1)
				if err != nil {
					return Request{}, err
				}
				t.Indexes[i] = make([]int, n)
				for j := range t.Indexes[i] {
					k, err := r.uvarint()
					if err != nil {
						return Request{}, err
					}
					t.Indexes[i][j] = int(k)
				}
			}
		}
		req.Table = t
	}
	ntxns, err := r.count(1)
	if err != nil {
		return Request{}, err
	}
	if ntxns > 0 {
		req.Txns = make([]string, ntxns)
		for i := range req.Txns {
			if req.Txns[i], err = r.str(); err != nil {
				return Request{}, err
			}
		}
	}
	return req, nil
}

// Response flag bits (first payload byte).
const (
	respOK       = 1 << 0
	respResync   = 1 << 1
	respGranted  = 1 << 2
	respRetry    = 1 << 3
	respStats    = 1 << 4
	respRedirect = 1 << 5
)

// appendResponse encodes resp onto dst. Row results are encoded from
// resp.vrows — typed values straight through value.AppendBinary, the
// same encoder the WAL uses for facts — never from the JSON path's
// quoted-string maps. Stats, a rare diagnostic op, rides as a JSON
// sub-payload rather than earning its own schema.
func appendResponse(dst []byte, resp *Response) ([]byte, error) {
	var flags byte
	if resp.OK {
		flags |= respOK
	}
	if resp.Resync {
		flags |= respResync
	}
	if resp.Granted {
		flags |= respGranted
	}
	if resp.Retry {
		flags |= respRetry
	}
	if resp.Stats != nil {
		flags |= respStats
	}
	if resp.Redirect != nil {
		flags |= respRedirect
	}
	dst = append(dst, flags)
	dst = appendWireString(dst, resp.Err)
	dst = binary.AppendUvarint(dst, uint64(resp.ID))
	dst = binary.AppendUvarint(dst, uint64(resp.Pending))
	dst = binary.AppendUvarint(dst, uint64(len(resp.IDs)))
	for _, id := range resp.IDs {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	dst = binary.AppendUvarint(dst, uint64(len(resp.Errs)))
	for _, e := range resp.Errs {
		dst = appendWireString(dst, e)
	}
	dst = binary.AppendUvarint(dst, resp.Seq)
	dst = binary.AppendUvarint(dst, resp.Applied)
	dst = binary.AppendUvarint(dst, resp.Lag)
	dst = binary.AppendUvarint(dst, resp.Term)
	if resp.Redirect != nil {
		dst = appendWireString(dst, resp.Redirect.Addr)
		dst = binary.AppendUvarint(dst, resp.Redirect.Term)
	}
	if resp.Stats != nil {
		js, err := json.Marshal(resp.Stats)
		if err != nil {
			return dst, err
		}
		dst = appendWireBytes(dst, js)
	}
	dst = appendWireBytes(dst, resp.Image)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Batches)))
	for _, b := range resp.Batches {
		dst = binary.AppendUvarint(dst, b.Seq)
		dst = binary.AppendUvarint(dst, b.Term)
		dst = binary.AppendUvarint(dst, uint64(len(b.Records)))
		for _, rec := range b.Records {
			dst = append(dst, rec.Type)
			dst = appendWireBytes(dst, rec.Payload)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(resp.vrows)))
	for _, row := range resp.vrows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for k, v := range row {
			dst = appendWireString(dst, k)
			dst = v.AppendBinary(dst)
		}
	}
	return dst, nil
}

// decodeResponse parses a frame payload into a Response. Typed row
// values are materialized back into the quoted-string maps the JSON
// protocol carries, so callers above the transport see identical rows
// on either protocol.
func decodeResponse(payload []byte) (Response, error) {
	var resp Response
	r := wireBuf{payload}
	flags, err := r.byteVal()
	if err != nil {
		return Response{}, err
	}
	resp.OK = flags&respOK != 0
	resp.Resync = flags&respResync != 0
	resp.Granted = flags&respGranted != 0
	resp.Retry = flags&respRetry != 0
	if resp.Err, err = r.str(); err != nil {
		return Response{}, err
	}
	id, err := r.uvarint()
	if err != nil {
		return Response{}, err
	}
	resp.ID = int64(id)
	pending, err := r.uvarint()
	if err != nil {
		return Response{}, err
	}
	resp.Pending = int(pending)
	nids, err := r.count(1)
	if err != nil {
		return Response{}, err
	}
	if nids > 0 {
		resp.IDs = make([]int64, nids)
		for i := range resp.IDs {
			v, err := r.uvarint()
			if err != nil {
				return Response{}, err
			}
			resp.IDs[i] = int64(v)
		}
	}
	nerrs, err := r.count(1)
	if err != nil {
		return Response{}, err
	}
	if nerrs > 0 {
		resp.Errs = make([]string, nerrs)
		for i := range resp.Errs {
			if resp.Errs[i], err = r.str(); err != nil {
				return Response{}, err
			}
		}
	}
	if resp.Seq, err = r.uvarint(); err != nil {
		return Response{}, err
	}
	if resp.Applied, err = r.uvarint(); err != nil {
		return Response{}, err
	}
	if resp.Lag, err = r.uvarint(); err != nil {
		return Response{}, err
	}
	if resp.Term, err = r.uvarint(); err != nil {
		return Response{}, err
	}
	if flags&respRedirect != 0 {
		rd := &Redirect{}
		if rd.Addr, err = r.str(); err != nil {
			return Response{}, err
		}
		if rd.Term, err = r.uvarint(); err != nil {
			return Response{}, err
		}
		resp.Redirect = rd
	}
	if flags&respStats != 0 {
		js, err := r.bytes()
		if err != nil {
			return Response{}, err
		}
		st := &quantumdb.Stats{}
		if err := json.Unmarshal(js, st); err != nil {
			return Response{}, fmt.Errorf("server: frame decode: stats: %w", err)
		}
		resp.Stats = st
	}
	if resp.Image, err = r.bytes(); err != nil {
		return Response{}, err
	}
	nbatches, err := r.count(3)
	if err != nil {
		return Response{}, err
	}
	if nbatches > 0 {
		resp.Batches = make([]WireBatch, nbatches)
		for i := range resp.Batches {
			b := &resp.Batches[i]
			if b.Seq, err = r.uvarint(); err != nil {
				return Response{}, err
			}
			if b.Term, err = r.uvarint(); err != nil {
				return Response{}, err
			}
			nrecs, err := r.count(2)
			if err != nil {
				return Response{}, err
			}
			b.Records = make([]WireRecord, nrecs)
			for j := range b.Records {
				if b.Records[j].Type, err = r.byteVal(); err != nil {
					return Response{}, err
				}
				if b.Records[j].Payload, err = r.bytes(); err != nil {
					return Response{}, err
				}
			}
		}
	}
	nrows, err := r.count(1)
	if err != nil {
		return Response{}, err
	}
	if nrows > 0 {
		resp.Rows = make([]map[string]string, nrows)
		for i := range resp.Rows {
			ncols, err := r.count(2)
			if err != nil {
				return Response{}, err
			}
			m := make(map[string]string, ncols)
			for j := 0; j < ncols; j++ {
				k, err := r.str()
				if err != nil {
					return Response{}, err
				}
				v, err := r.value()
				if err != nil {
					return Response{}, err
				}
				m[k] = v.Quoted()
			}
			resp.Rows[i] = m
		}
	}
	if r.remaining() != 0 {
		return Response{}, fmt.Errorf("server: frame decode: %d trailing bytes", r.remaining())
	}
	return resp, nil
}
