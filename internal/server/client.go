package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
	"repro/internal/value"
)

// Proto selects the wire protocol a Client speaks.
type Proto int

const (
	// ProtoBinary is the framed binary protocol (frame.go): the client
	// opens with the magic preamble and encodes requests into pooled
	// frame buffers. The default.
	ProtoBinary Proto = iota
	// ProtoJSON is the legacy one-JSON-object-per-line protocol; servers
	// serve it forever (it is also the debugging protocol: a shell
	// heredoc over /dev/tcp speaks it).
	ProtoJSON
)

// Client speaks to a quantum database server — the framed binary
// protocol by default, JSON lines via DialJSON. Safe for concurrent
// use; requests are serialized over one connection (PipeClient is the
// pipelined form).
//
// The client is failover-aware: transient transport errors (dial
// refused, reset, EOF from a dying server) are retried under a capped
// jittered backoff, a structured leader-moved refusal (Response.
// Redirect — a demoted leader or read-only follower naming the current
// leader) reconnects to the named address and retries there, and a
// retryable refusal (Response.Retry — the server shedding load with
// its inflight window full) backs off and retries on the same
// connection. One caveat is inherent to retrying writes: a submit
// whose response was lost may have committed before the connection
// died, so retried mutations are at-least-once. Reads and idempotent
// verbs are safe; callers that need exactly-once writes must dedupe at
// the application layer.
type Client struct {
	mu    sync.Mutex
	addr  string
	proto Proto
	retry RetryPolicy
	conn  net.Conn
	// JSON protocol state.
	dec *json.Decoder
	enc *json.Encoder
	// Binary protocol state: the buffered frame reader and the reused
	// encode/decode buffers (the pooled-buffer discipline — one logical
	// call in flight under mu, so one buffer each way suffices).
	br     *bufio.Reader
	wbuf   []byte
	rbuf   []byte
	nextID uint64
}

// RetryPolicy bounds one logical call's persistence. Zero fields take
// defaults: 8 attempts, 25ms base delay doubling to a 2s cap (full
// jitter), 4 leader-moved hops.
type RetryPolicy struct {
	MaxAttempts  int
	BaseDelay    time.Duration
	MaxDelay     time.Duration
	MaxRedirects int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxRedirects <= 0 {
		p.MaxRedirects = 4
	}
	return p
}

// dialTimeout bounds one TCP connect inside a call attempt.
const dialTimeout = 5 * time.Second

// Dial connects to a server over the binary protocol with the default
// retry policy. The initial reachability check itself retries transient
// dial failures, so a one-shot CLI invocation launched during a leader
// restart connects once the server is back instead of failing on the
// first refusal.
func Dial(addr string) (*Client, error) {
	return DialProto(addr, ProtoBinary, RetryPolicy{})
}

// DialWithPolicy connects over the binary protocol with an explicit
// retry policy.
func DialWithPolicy(addr string, p RetryPolicy) (*Client, error) {
	return DialProto(addr, ProtoBinary, p)
}

// DialJSON connects over the legacy JSON-lines protocol (the server
// serves both on one port; this exercises its fallback path).
func DialJSON(addr string) (*Client, error) {
	return DialProto(addr, ProtoJSON, RetryPolicy{})
}

// DialProto connects with an explicit protocol and retry policy.
func DialProto(addr string, proto Proto, p RetryPolicy) (*Client, error) {
	c := &Client{addr: addr, proto: proto, retry: p}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked establishes the connection, retrying transient dial
// (and, on the binary protocol, handshake) failures within the
// policy's budget. No request is sent beyond the preamble.
func (c *Client) connectLocked() error {
	p := c.retry.withDefaults()
	bo := replica.NewBackoff(p.BaseDelay, p.MaxDelay)
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		err := c.dialLocked()
		if err == nil {
			return nil
		}
		if !isTransient(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("server: dial %s failed after %d attempts: %w",
		c.addr, p.MaxAttempts, lastErr)
}

// dialLocked performs one connect attempt, including the binary
// protocol's magic exchange: send the preamble, require its echo. A
// server that answers anything else is not speaking this protocol —
// surfaced as an error rather than silently downgrading, since every
// server version that frames also still serves JSON on request.
func (c *Client) dialLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
	if err != nil {
		return err
	}
	if c.proto == ProtoJSON {
		c.conn = conn
		c.dec = json.NewDecoder(bufio.NewReader(conn))
		c.enc = json.NewEncoder(conn)
		return nil
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(dialTimeout))
	if _, err := conn.Write([]byte(frameMagic)); err != nil {
		conn.Close()
		return err
	}
	var echo [len(frameMagic)]byte
	if _, err := io.ReadFull(br, echo[:]); err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Time{})
	if string(echo[:]) != frameMagic {
		conn.Close()
		return fmt.Errorf("server: %s did not ack the binary protocol", c.addr)
	}
	c.conn = conn
	c.br = br
	return nil
}

// Addr is the address the client currently targets; it moves when a
// redirect is followed.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.dec, c.enc, c.br = nil, nil, nil, nil
	return err
}

// roundTrip runs one logical call: send, decode, and on transient
// failure or leader-moved redirect, reconnect and try again within the
// policy's budget. Redirects don't consume retry attempts (they are
// progress), but are capped separately so two servers pointing at each
// other can't loop forever.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.retry.withDefaults()
	bo := replica.NewBackoff(p.BaseDelay, p.MaxDelay)
	redirects := 0
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		resp, err := c.once(req)
		if err != nil {
			if !isTransient(err) {
				return Response{}, err
			}
			lastErr = err
			c.dropConnLocked()
			continue
		}
		if resp.OK {
			return resp, nil
		}
		if resp.Retry {
			// Structured shed: the server's inflight window stayed full
			// past its queue-wait threshold. The connection is healthy —
			// back off and retry on it.
			lastErr = fmt.Errorf("server: %s", resp.Err)
			continue
		}
		if rd := resp.Redirect; rd != nil && rd.Addr != "" && rd.Addr != c.addr && redirects < p.MaxRedirects {
			redirects++
			c.dropConnLocked()
			c.addr = rd.Addr
			bo.Reset()
			attempt--
			continue
		}
		return resp, fmt.Errorf("server: %s", resp.Err)
	}
	return Response{}, fmt.Errorf("server: %s against %s failed after %d attempts: %w",
		req.Op, c.addr, p.MaxAttempts, lastErr)
}

// once performs a single request over the current connection, dialing
// if needed.
func (c *Client) once(req Request) (Response, error) {
	if c.conn == nil {
		if err := c.dialLocked(); err != nil {
			return Response{}, err
		}
	}
	if c.proto == ProtoBinary {
		return c.onceBinary(&req)
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// onceBinary frames one request into the reused write buffer, sends it
// as a single write, and reads response frames until the echoed ID
// matches (stale replies from an abandoned earlier call on the same
// connection are skipped, defensively — the synchronous client never
// leaves one behind on a healthy exchange).
func (c *Client) onceBinary(req *Request) (Response, error) {
	op, ok := opCodes[req.Op]
	if !ok {
		return Response{}, fmt.Errorf("server: unknown op %q", req.Op)
	}
	c.nextID++
	id := c.nextID
	c.wbuf = beginFrame(c.wbuf[:0], id, op)
	c.wbuf = appendRequest(c.wbuf, req)
	c.wbuf = finishFrame(c.wbuf)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return Response{}, err
	}
	for {
		rid, _, payload, nbuf, err := readFrame(c.br, c.rbuf)
		c.rbuf = nbuf
		if err != nil {
			return Response{}, err
		}
		if rid != id {
			continue
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			// The frame was intact but its payload didn't parse: the
			// stream is suspect. Drop the connection so the next attempt
			// starts clean, and retry as a transport failure.
			c.dropConnLocked()
			return Response{}, fmt.Errorf("%w: %v", io.ErrUnexpectedEOF, err)
		}
		return resp, nil
	}
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.dec, c.enc, c.br = nil, nil, nil, nil
}

// isTransient classifies transport-level failures worth retrying:
// refused/reset/closed connections, EOF from a server dying mid-reply,
// and timeouts. Anything else (a well-formed server refusal travels as
// a Response, not an error) is surfaced immediately.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: "ping"})
	return err
}

// CreateTable registers a relation.
func (c *Client) CreateTable(t TableSpec) error {
	_, err := c.roundTrip(Request{Op: "create", Table: &t})
	return err
}

// Exec applies signed ground writes.
func (c *Client) Exec(facts string) error {
	_, err := c.roundTrip(Request{Op: "exec", Facts: facts})
	return err
}

// Submit admits a resource transaction (Datalog-like notation).
func (c *Client) Submit(txn string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "txn", Txn: txn})
	return resp.ID, err
}

// SubmitBatch admits a batch of resource transactions in one round
// trip and one amortized server-side admission cycle. Results align
// with txns: ids[i] is valid where errs[i] is nil. The returned error
// covers transport-level failure of the whole call; per-member
// rejections ride in errs.
func (c *Client) SubmitBatch(txns []string) (ids []int64, errs []error, err error) {
	resp, err := c.roundTrip(Request{Op: "batch", Txns: txns})
	if err != nil {
		return nil, nil, err
	}
	errs = make([]error, len(txns))
	for i, e := range resp.Errs {
		if e != "" && i < len(errs) {
			errs[i] = fmt.Errorf("server: %s", e)
		}
	}
	return resp.IDs, errs, nil
}

// SubmitSQL admits a resource transaction in SQL syntax.
func (c *Client) SubmitSQL(stmt string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "sql", Txn: stmt})
	return resp.ID, err
}

// SubmitEntangled admits an entangled resource transaction.
func (c *Client) SubmitEntangled(txn, tag, partner string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "etxn", Txn: txn, Tag: tag, Partner: partner})
	return resp.ID, err
}

// Query runs a conjunctive read (collapsing server-side as needed) and
// returns variable bindings per row.
func (c *Client) Query(query string) ([]map[string]value.Value, error) {
	resp, err := c.roundTrip(Request{Op: "read", Query: query})
	if err != nil {
		return nil, err
	}
	rows := make([]map[string]value.Value, len(resp.Rows))
	for i, r := range resp.Rows {
		m := make(map[string]value.Value, len(r))
		for k, s := range r {
			v, err := value.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("server: bad value %q: %v", s, err)
			}
			m[k] = v
		}
		rows[i] = m
	}
	return rows, nil
}

// Preview lists the pending transaction IDs a read would collapse.
func (c *Client) Preview(query string) ([]int64, error) {
	resp, err := c.roundTrip(Request{Op: "preview", Query: query})
	return resp.IDs, err
}

// Ground collapses one transaction; GroundAll collapses everything.
func (c *Client) Ground(id int64) error {
	_, err := c.roundTrip(Request{Op: "ground", ID: id})
	return err
}

// GroundAll collapses every pending transaction.
func (c *Client) GroundAll() error {
	_, err := c.roundTrip(Request{Op: "groundall"})
	return err
}

// Pending returns the number of pending transactions.
func (c *Client) Pending() (int, error) {
	resp, err := c.roundTrip(Request{Op: "pending"})
	return resp.Pending, err
}

// SnapRead runs a collapse-free snapshot query and returns the wire's
// quoted-string rows verbatim — handy for diffing a leader against a
// follower, where byte-equal rows are the point.
func (c *Client) SnapRead(query string) ([]map[string]string, error) {
	resp, err := c.roundTrip(Request{Op: "snapread", Query: query})
	return resp.Rows, err
}

// Lag reports replication positions: the server's WAL sequence (leader)
// or last-seen leader sequence (follower), the applied watermark (best
// subscriber ack on a leader, own applied seq on a follower), and the
// difference.
func (c *Client) Lag() (seq, applied, lag uint64, err error) {
	resp, err := c.roundTrip(Request{Op: "lag"})
	return resp.Seq, resp.Applied, resp.Lag, err
}

// Term reports the server's current replication term (via the lag
// verb, which both roles answer).
func (c *Client) Term() (uint64, error) {
	resp, err := c.roundTrip(Request{Op: "lag"})
	return resp.Term, err
}

// Promote asks a follower server to promote itself to leader; force
// skips the fence exchange (use when the leader is known dead).
// Returns the new leader's term and WAL position. Promoting a server
// that is already the leader succeeds and reports its current term.
func (c *Client) Promote(force bool) (term, seq uint64, err error) {
	resp, err := c.roundTrip(Request{Op: "promote", Force: force})
	return resp.Term, resp.Seq, err
}

// Stats fetches the server's engine counters (follower-side fields
// filled on a follower).
func (c *Client) Stats() (quantumdb.Stats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return quantumdb.Stats{}, err
	}
	return *resp.Stats, nil
}
