package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
	"repro/internal/value"
)

// Client speaks the JSON-lines protocol to a quantum database server.
// Safe for concurrent use; requests are serialized over one connection.
//
// The client is failover-aware: transient transport errors (dial
// refused, reset, EOF from a dying server) are retried under a capped
// jittered backoff, and a structured leader-moved refusal (Response.
// Redirect — a demoted leader or read-only follower naming the current
// leader) reconnects to the named address and retries there. One
// caveat is inherent to retrying writes: a submit whose response was
// lost may have committed before the connection died, so retried
// mutations are at-least-once. Reads and idempotent verbs are safe;
// callers that need exactly-once writes must dedupe at the application
// layer.
type Client struct {
	mu    sync.Mutex
	addr  string
	retry RetryPolicy
	conn  net.Conn
	dec   *json.Decoder
	enc   *json.Encoder
}

// RetryPolicy bounds one logical call's persistence. Zero fields take
// defaults: 8 attempts, 25ms base delay doubling to a 2s cap (full
// jitter), 4 leader-moved hops.
type RetryPolicy struct {
	MaxAttempts  int
	BaseDelay    time.Duration
	MaxDelay     time.Duration
	MaxRedirects int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxRedirects <= 0 {
		p.MaxRedirects = 4
	}
	return p
}

// dialTimeout bounds one TCP connect inside a call attempt.
const dialTimeout = 5 * time.Second

// Dial connects to a server with the default retry policy. The initial
// reachability check itself retries transient dial failures, so a
// one-shot CLI invocation launched during a leader restart connects
// once the server is back instead of failing on the first refusal.
func Dial(addr string) (*Client, error) {
	return DialWithPolicy(addr, RetryPolicy{})
}

// DialWithPolicy connects with an explicit retry policy.
func DialWithPolicy(addr string, p RetryPolicy) (*Client, error) {
	c := &Client{addr: addr, retry: p}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked establishes the connection, retrying transient dial
// failures within the policy's budget. No request is sent.
func (c *Client) connectLocked() error {
	p := c.retry.withDefaults()
	bo := replica.NewBackoff(p.BaseDelay, p.MaxDelay)
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
		if err == nil {
			c.conn = conn
			c.dec = json.NewDecoder(bufio.NewReader(conn))
			c.enc = json.NewEncoder(conn)
			return nil
		}
		if !isTransient(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("server: dial %s failed after %d attempts: %w",
		c.addr, p.MaxAttempts, lastErr)
}

// Addr is the address the client currently targets; it moves when a
// redirect is followed.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.dec, c.enc = nil, nil, nil
	return err
}

// roundTrip runs one logical call: send, decode, and on transient
// failure or leader-moved redirect, reconnect and try again within the
// policy's budget. Redirects don't consume retry attempts (they are
// progress), but are capped separately so two servers pointing at each
// other can't loop forever.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.retry.withDefaults()
	bo := replica.NewBackoff(p.BaseDelay, p.MaxDelay)
	redirects := 0
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		resp, err := c.once(req)
		if err != nil {
			if !isTransient(err) {
				return Response{}, err
			}
			lastErr = err
			c.dropConnLocked()
			continue
		}
		if resp.OK {
			return resp, nil
		}
		if rd := resp.Redirect; rd != nil && rd.Addr != "" && rd.Addr != c.addr && redirects < p.MaxRedirects {
			redirects++
			c.dropConnLocked()
			c.addr = rd.Addr
			bo.Reset()
			attempt--
			continue
		}
		return resp, fmt.Errorf("server: %s", resp.Err)
	}
	return Response{}, fmt.Errorf("server: %s against %s failed after %d attempts: %w",
		req.Op, c.addr, p.MaxAttempts, lastErr)
}

// once performs a single request over the current connection, dialing
// if needed.
func (c *Client) once(req Request) (Response, error) {
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
		if err != nil {
			return Response{}, err
		}
		c.conn = conn
		c.dec = json.NewDecoder(bufio.NewReader(conn))
		c.enc = json.NewEncoder(conn)
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.dec, c.enc = nil, nil, nil
}

// isTransient classifies transport-level failures worth retrying:
// refused/reset/closed connections, EOF from a server dying mid-reply,
// and timeouts. Anything else (a well-formed server refusal travels as
// a Response, not an error) is surfaced immediately.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: "ping"})
	return err
}

// CreateTable registers a relation.
func (c *Client) CreateTable(t TableSpec) error {
	_, err := c.roundTrip(Request{Op: "create", Table: &t})
	return err
}

// Exec applies signed ground writes.
func (c *Client) Exec(facts string) error {
	_, err := c.roundTrip(Request{Op: "exec", Facts: facts})
	return err
}

// Submit admits a resource transaction (Datalog-like notation).
func (c *Client) Submit(txn string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "txn", Txn: txn})
	return resp.ID, err
}

// SubmitSQL admits a resource transaction in SQL syntax.
func (c *Client) SubmitSQL(stmt string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "sql", Txn: stmt})
	return resp.ID, err
}

// SubmitEntangled admits an entangled resource transaction.
func (c *Client) SubmitEntangled(txn, tag, partner string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "etxn", Txn: txn, Tag: tag, Partner: partner})
	return resp.ID, err
}

// Query runs a conjunctive read (collapsing server-side as needed) and
// returns variable bindings per row.
func (c *Client) Query(query string) ([]map[string]value.Value, error) {
	resp, err := c.roundTrip(Request{Op: "read", Query: query})
	if err != nil {
		return nil, err
	}
	rows := make([]map[string]value.Value, len(resp.Rows))
	for i, r := range resp.Rows {
		m := make(map[string]value.Value, len(r))
		for k, s := range r {
			v, err := value.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("server: bad value %q: %v", s, err)
			}
			m[k] = v
		}
		rows[i] = m
	}
	return rows, nil
}

// Preview lists the pending transaction IDs a read would collapse.
func (c *Client) Preview(query string) ([]int64, error) {
	resp, err := c.roundTrip(Request{Op: "preview", Query: query})
	return resp.IDs, err
}

// Ground collapses one transaction; GroundAll collapses everything.
func (c *Client) Ground(id int64) error {
	_, err := c.roundTrip(Request{Op: "ground", ID: id})
	return err
}

// GroundAll collapses every pending transaction.
func (c *Client) GroundAll() error {
	_, err := c.roundTrip(Request{Op: "groundall"})
	return err
}

// Pending returns the number of pending transactions.
func (c *Client) Pending() (int, error) {
	resp, err := c.roundTrip(Request{Op: "pending"})
	return resp.Pending, err
}

// SnapRead runs a collapse-free snapshot query and returns the wire's
// quoted-string rows verbatim — handy for diffing a leader against a
// follower, where byte-equal rows are the point.
func (c *Client) SnapRead(query string) ([]map[string]string, error) {
	resp, err := c.roundTrip(Request{Op: "snapread", Query: query})
	return resp.Rows, err
}

// Lag reports replication positions: the server's WAL sequence (leader)
// or last-seen leader sequence (follower), the applied watermark (best
// subscriber ack on a leader, own applied seq on a follower), and the
// difference.
func (c *Client) Lag() (seq, applied, lag uint64, err error) {
	resp, err := c.roundTrip(Request{Op: "lag"})
	return resp.Seq, resp.Applied, resp.Lag, err
}

// Term reports the server's current replication term (via the lag
// verb, which both roles answer).
func (c *Client) Term() (uint64, error) {
	resp, err := c.roundTrip(Request{Op: "lag"})
	return resp.Term, err
}

// Promote asks a follower server to promote itself to leader; force
// skips the fence exchange (use when the leader is known dead).
// Returns the new leader's term and WAL position. Promoting a server
// that is already the leader succeeds and reports its current term.
func (c *Client) Promote(force bool) (term, seq uint64, err error) {
	resp, err := c.roundTrip(Request{Op: "promote", Force: force})
	return resp.Term, resp.Seq, err
}

// Stats fetches the server's engine counters (follower-side fields
// filled on a follower).
func (c *Client) Stats() (quantumdb.Stats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return quantumdb.Stats{}, err
	}
	return *resp.Stats, nil
}
