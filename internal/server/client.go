package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	quantumdb "repro"
	"repro/internal/value"
)

// Client speaks the JSON-lines protocol to a quantum database server.
// Safe for concurrent use; requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("server: %s", resp.Err)
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: "ping"})
	return err
}

// CreateTable registers a relation.
func (c *Client) CreateTable(t TableSpec) error {
	_, err := c.roundTrip(Request{Op: "create", Table: &t})
	return err
}

// Exec applies signed ground writes.
func (c *Client) Exec(facts string) error {
	_, err := c.roundTrip(Request{Op: "exec", Facts: facts})
	return err
}

// Submit admits a resource transaction (Datalog-like notation).
func (c *Client) Submit(txn string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "txn", Txn: txn})
	return resp.ID, err
}

// SubmitSQL admits a resource transaction in SQL syntax.
func (c *Client) SubmitSQL(stmt string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "sql", Txn: stmt})
	return resp.ID, err
}

// SubmitEntangled admits an entangled resource transaction.
func (c *Client) SubmitEntangled(txn, tag, partner string) (int64, error) {
	resp, err := c.roundTrip(Request{Op: "etxn", Txn: txn, Tag: tag, Partner: partner})
	return resp.ID, err
}

// Query runs a conjunctive read (collapsing server-side as needed) and
// returns variable bindings per row.
func (c *Client) Query(query string) ([]map[string]value.Value, error) {
	resp, err := c.roundTrip(Request{Op: "read", Query: query})
	if err != nil {
		return nil, err
	}
	rows := make([]map[string]value.Value, len(resp.Rows))
	for i, r := range resp.Rows {
		m := make(map[string]value.Value, len(r))
		for k, s := range r {
			v, err := value.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("server: bad value %q: %v", s, err)
			}
			m[k] = v
		}
		rows[i] = m
	}
	return rows, nil
}

// Preview lists the pending transaction IDs a read would collapse.
func (c *Client) Preview(query string) ([]int64, error) {
	resp, err := c.roundTrip(Request{Op: "preview", Query: query})
	return resp.IDs, err
}

// Ground collapses one transaction; GroundAll collapses everything.
func (c *Client) Ground(id int64) error {
	_, err := c.roundTrip(Request{Op: "ground", ID: id})
	return err
}

// GroundAll collapses every pending transaction.
func (c *Client) GroundAll() error {
	_, err := c.roundTrip(Request{Op: "groundall"})
	return err
}

// Pending returns the number of pending transactions.
func (c *Client) Pending() (int, error) {
	resp, err := c.roundTrip(Request{Op: "pending"})
	return resp.Pending, err
}

// SnapRead runs a collapse-free snapshot query and returns the wire's
// quoted-string rows verbatim — handy for diffing a leader against a
// follower, where byte-equal rows are the point.
func (c *Client) SnapRead(query string) ([]map[string]string, error) {
	resp, err := c.roundTrip(Request{Op: "snapread", Query: query})
	return resp.Rows, err
}

// Lag reports replication positions: the server's WAL sequence (leader)
// or last-seen leader sequence (follower), the applied watermark (best
// subscriber ack on a leader, own applied seq on a follower), and the
// difference.
func (c *Client) Lag() (seq, applied, lag uint64, err error) {
	resp, err := c.roundTrip(Request{Op: "lag"})
	return resp.Seq, resp.Applied, resp.Lag, err
}

// Stats fetches the server's engine counters (follower-side fields
// filled on a follower).
func (c *Client) Stats() (quantumdb.Stats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return quantumdb.Stats{}, err
	}
	return *resp.Stats, nil
}
