package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	quantumdb "repro"
)

// startPipeServer boots a leader with a WAL (so repl.pull long-polls
// actually park — the test suite's "slow op") and explicit data-plane
// limits; 0 keeps a knob's default.
func startPipeServer(t *testing.T, maxInflight, maxConns int, shedWait time.Duration) (*Server, string) {
	t.Helper()
	db, err := quantumdb.Open(quantumdb.Options{WALPath: filepath.Join(t.TempDir(), "qdb.wal")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := New(db)
	srv.SetLimits(maxInflight, maxConns, shedWait)
	go srv.Serve(l)
	return srv, l.Addr().String()
}

// TestBinaryOutOfOrderCompletion pins the pipelining contract: a slow
// op (a parked long-poll pull) and a fast op issued after it on the
// SAME connection complete out of order — the fast response arrives
// while the slow op is still parked.
func TestBinaryOutOfOrderCompletion(t *testing.T) {
	_, addr := startPipeServer(t, 0, 0, 0)
	p, err := DialPipe(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		// Nothing is ever committed above watermark 1e9, so this parks
		// for the full long-poll window.
		p.Do(Request{Op: "repl.pull", After: 1 << 30, WaitMS: 2000})
	}()
	// Give the slow frame a head start into the server's read loop.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	resp, err := p.Do(Request{Op: "ping"})
	fast := time.Since(start)
	if err != nil || !resp.OK {
		t.Fatalf("ping: resp=%+v err=%v", resp, err)
	}
	select {
	case <-slowDone:
		t.Fatal("slow op completed before fast op: no out-of-order completion")
	default:
	}
	if fast > time.Second {
		t.Fatalf("fast op took %v: serialized behind the parked op", fast)
	}
	<-slowDone
}

// TestInflightWindowQueues proves window admission QUEUES inside the
// shed threshold: window 1, generous shedWait, a parked op holding the
// slot — the next op waits its turn and succeeds, with zero sheds.
func TestInflightWindowQueues(t *testing.T) {
	srv, addr := startPipeServer(t, 1, 0, 5*time.Second)
	p, err := DialPipe(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	go p.Do(Request{Op: "repl.pull", After: 1 << 30, WaitMS: 150})
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	resp, err := p.Do(Request{Op: "ping"})
	if err != nil || !resp.OK {
		t.Fatalf("ping: resp=%+v err=%v", resp, err)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("ping completed in %v: window of 1 not enforced (should queue behind the parked op)", waited)
	}
	if n := srv.Sheds(); n != 0 {
		t.Fatalf("sheds = %d, want 0 (queue-wait should absorb this)", n)
	}
}

// TestInflightWindowSheds proves the backpressure edge: window 1, tiny
// shed threshold, slot held — the next op is refused with the
// structured retryable overloaded error instead of waiting.
func TestInflightWindowSheds(t *testing.T) {
	srv, addr := startPipeServer(t, 1, 0, time.Millisecond)
	p, err := DialPipe(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	go p.Do(Request{Op: "repl.pull", After: 1 << 30, WaitMS: 500})
	time.Sleep(30 * time.Millisecond)
	resp, err := p.Do(Request{Op: "ping"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !resp.Retry {
		t.Fatalf("resp = %+v, want shed (OK=false Retry=true)", resp)
	}
	if !strings.Contains(resp.Err, "overloaded") {
		t.Fatalf("shed error = %q, want overloaded", resp.Err)
	}
	if n := srv.Sheds(); n < 1 {
		t.Fatalf("sheds = %d, want >= 1", n)
	}
}

// TestClientRetriesShed proves a Response.Retry refusal is retryable by
// the ordinary Client: a server that sheds the first attempt and serves
// the second yields one successful call, two requests observed.
func TestClientRetriesShed(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var served atomic.Int64
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		magic := make([]byte, len(frameMagic))
		if _, err := io.ReadFull(conn, magic); err != nil || string(magic) != frameMagic {
			return
		}
		conn.Write([]byte(frameMagic))
		br := bufio.NewReader(conn)
		var buf, out []byte
		for {
			id, _, _, nbuf, err := readFrame(br, buf)
			buf = nbuf
			if err != nil {
				return
			}
			n := served.Add(1)
			resp := Response{OK: true}
			if n == 1 {
				resp = Response{Err: ErrOverloaded.Error(), Retry: true}
			}
			out = beginFrame(out[:0], id, 0)
			out, _ = appendResponse(out, &resp)
			out = finishFrame(out)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	c, err := DialWithPolicy(l.Addr().String(), RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through a shed: %v", err)
	}
	if n := served.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2 (shed + retry)", n)
	}
}

// TestShedErrorSurfacesAfterBudget: a server that always sheds
// exhausts the retry budget and the overloaded error reaches the
// caller (not a hang, not a redirect loop).
func TestShedErrorSurfacesAfterBudget(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		magic := make([]byte, len(frameMagic))
		if _, err := io.ReadFull(conn, magic); err != nil {
			return
		}
		conn.Write([]byte(frameMagic))
		br := bufio.NewReader(conn)
		var buf, out []byte
		for {
			id, _, _, nbuf, err := readFrame(br, buf)
			buf = nbuf
			if err != nil {
				return
			}
			out = beginFrame(out[:0], id, 0)
			out, _ = appendResponse(out, &Response{Err: ErrOverloaded.Error(), Retry: true})
			out = finishFrame(out)
			conn.Write(out)
		}
	}()
	c, err := DialWithPolicy(l.Addr().String(), RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want overloaded after budget", err)
	}
}

// TestMaxConnsRefused: connections beyond -max-conns are closed at
// accept; existing connections keep working.
func TestMaxConnsRefused(t *testing.T) {
	_, addr := startPipeServer(t, 0, 1, 0)
	p, err := DialPipe(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if resp, err := p.Do(Request{Op: "ping"}); err != nil || !resp.OK {
		t.Fatalf("first conn ping: %+v %v", resp, err)
	}
	// The second connection is accepted then immediately closed: the
	// pipe dial fails at handshake, or its first call dies.
	p2, err := DialPipe(addr)
	if err == nil {
		defer p2.Close()
		if _, err := p2.Do(Request{Op: "ping"}); err == nil {
			t.Fatal("second connection served beyond max-conns=1")
		}
	}
	// First connection unaffected.
	if resp, err := p.Do(Request{Op: "ping"}); err != nil || !resp.OK {
		t.Fatalf("first conn after refusal: %+v %v", resp, err)
	}
}

// TestSubmitBatchOverWire drives the batch verb end to end over BOTH
// protocols: aligned ids/errs, per-member rejection isolation, engine
// state advanced once per accept.
func TestSubmitBatchOverWire(t *testing.T) {
	for _, proto := range []Proto{ProtoBinary, ProtoJSON} {
		name := "binary"
		if proto == ProtoJSON {
			name = "json"
		}
		t.Run(name, func(t *testing.T) {
			c, _ := startServerProto(t, proto)
			seatSchema(t, c)
			txns := []string{
				"-Available(1, s), +Bookings('A', 1, s) :-1 Available(1, s)",
				"bogus ):(",
				"-Available(1, '9Z'), +Bookings('X', 1, '9Z') :-1 Available(1, '9Z')",
				"-Available(1, s), +Bookings('B', 1, s) :-1 Available(1, s)",
			}
			ids, errs, err := c.SubmitBatch(txns)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(txns) || len(errs) != len(txns) {
				t.Fatalf("lengths: ids=%d errs=%d", len(ids), len(errs))
			}
			for _, i := range []int{0, 3} {
				if errs[i] != nil || ids[i] == 0 {
					t.Fatalf("slot %d: id=%d err=%v", i, ids[i], errs[i])
				}
			}
			for _, i := range []int{1, 2} {
				if errs[i] == nil {
					t.Fatalf("slot %d: expected error", i)
				}
			}
			if n, _ := c.Pending(); n != 2 {
				t.Fatalf("pending = %d, want 2", n)
			}
		})
	}
}

// startServerProto is startServer with a protocol choice for the
// returned client.
func startServerProto(t *testing.T, proto Proto) (*Client, *quantumdb.DB) {
	t.Helper()
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := New(db)
	go srv.Serve(l)
	c, err := DialProto(l.Addr().String(), proto, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, db
}

// TestProtocolRowParity: the same snapread answered over binary frames
// and JSON lines yields byte-identical quoted rows — the cross-protocol
// invariant the follower diff harness depends on.
func TestProtocolRowParity(t *testing.T) {
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go New(db).Serve(l)
	bc, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	jc, err := DialJSON(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	seatSchema(t, bc)
	if _, err := bc.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}
	brows, err := bc.SnapRead("Available(1, s)")
	if err != nil {
		t.Fatal(err)
	}
	jrows, err := jc.SnapRead("Available(1, s)")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(brows) != fmt.Sprint(jrows) {
		t.Fatalf("row parity broken:\nbinary: %v\njson:   %v", brows, jrows)
	}
	if len(brows) == 0 {
		t.Fatal("no rows")
	}
}

// TestPipelinedStress hammers one server with 8 pipelined connections
// running mixed submit/ground/read traffic concurrently; run under
// -race in CI, it is the data plane's interleaving torture test.
func TestPipelinedStress(t *testing.T) {
	c, _ := startServerProto(t, ProtoBinary)
	if err := c.CreateTable(TableSpec{Name: "Slot", Columns: []string{"n"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(TableSpec{Name: "Noted", Columns: []string{"n"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("+Slot(1), +Slot(2), +Slot(3), +Slot(4)"); err != nil {
		t.Fatal(err)
	}
	addr := c.Addr()

	const conns = 8
	const perConn = 4 // concurrent issuers per connection
	iters := 30
	if testing.Short() {
		iters = 8
	}
	var seq atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, conns*perConn)
	for ci := 0; ci < conns; ci++ {
		p, err := DialPipe(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for gi := 0; gi < perConn; gi++ {
			wg.Add(1)
			go func(p *PipeClient, lane int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					var resp Response
					var err error
					switch lane % 4 {
					case 0: // submit
						n := seq.Add(1)
						resp, err = p.Do(Request{Op: "txn",
							Txn: fmt.Sprintf("+Noted(%d) :-1 Slot(s)", n)})
					case 1: // collapsing read
						resp, err = p.Do(Request{Op: "read", Query: "Noted(x)"})
					case 2: // ground whatever is pending
						resp, err = p.Do(Request{Op: "groundall"})
					case 3: // snapshot read + pending
						resp, err = p.Do(Request{Op: "snapread", Query: "Slot(s)"})
					}
					if err != nil {
						errc <- fmt.Errorf("lane %d iter %d: %v", lane, i, err)
						return
					}
					if !resp.OK && !resp.Retry {
						errc <- fmt.Errorf("lane %d iter %d: server refusal %q", lane, i, resp.Err)
						return
					}
				}
			}(p, ci*perConn+gi)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The engine must still be coherent: a final groundall and read.
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("Noted(x)"); err != nil {
		t.Fatal(err)
	}
}

// TestJSONProtocolStillServed is the fallback guard: a JSON-lines
// client (no magic preamble) gets the full verb set on the same port
// binary clients use.
func TestJSONProtocolStillServed(t *testing.T) {
	c, _ := startServerProto(t, ProtoJSON)
	seatSchema(t, c)
	id, err := c.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)")
	if err != nil || id == 0 {
		t.Fatalf("submit over JSON: id=%d err=%v", id, err)
	}
	rows, err := c.Query("Bookings('Mickey', 1, s)")
	if err != nil || len(rows) != 1 {
		t.Fatalf("query over JSON: rows=%v err=%v", rows, err)
	}
	if n, _ := c.Pending(); n != 0 {
		t.Fatalf("pending = %d", n)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestShedIsRetryableAgainstRealServer wires the whole loop: a real
// server with window 1 and an aggressive shed threshold, a parked slow
// op, and an ordinary Client issuing a call on a SECOND connection —
// plus a pipelined shed retried manually, mirroring what the load
// generator does.
func TestShedRetryLoopAgainstRealServer(t *testing.T) {
	srv, addr := startPipeServer(t, 1, 0, time.Millisecond)
	p, err := DialPipe(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	go p.Do(Request{Op: "repl.pull", After: 1 << 30, WaitMS: 400})
	time.Sleep(30 * time.Millisecond)

	// Manual retry loop over the pipe: shed, back off, eventually land
	// (the parked op releases its slot after 400ms).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := p.Do(Request{Op: "ping"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK {
			break
		}
		if !resp.Retry {
			t.Fatalf("non-retryable refusal: %q", resp.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("shed retry loop never landed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Sheds() == 0 {
		t.Fatal("expected at least one shed")
	}
}
