package server

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// This file is the pipelined binary connection loop: the server-side
// half of the binary protocol negotiated in handle. One connection gets
// three kinds of goroutines —
//
//   - the reader (handleBinary itself): reads frames, decodes requests,
//     admits them into the bounded inflight window (shedding with the
//     retryable overloaded error when the window stays full past the
//     queue-wait threshold), and spawns a dispatcher per admitted
//     request;
//   - dispatchers: run s.dispatch on the engine concurrently — the
//     whole point: the admission layer is parallel, so one connection's
//     requests should feed it in parallel too;
//   - the writer (writeResponses): the ONLY goroutine writing to the
//     connection. Dispatchers hand it completed responses over a
//     channel and it frames them in completion order — out of order
//     with respect to arrival — batching socket writes by flushing
//     only when its queue runs dry.
//
// Drain discipline: a dispatched request holds a beginOp slot until its
// response frame is FLUSHED to the socket (the writer releases slots
// after each flush), so Shutdown's "in-flight dispatches finish writing
// their responses" promise holds on the binary path exactly as on the
// JSON path.

// binResp is one completed response travelling dispatcher → writer.
type binResp struct {
	id   uint64
	resp Response
	// counted marks responses holding a beginOp slot, released by the
	// writer once the frame reaches the socket. Sheds and decode-error
	// replies are uncounted — they never dispatched.
	counted bool
}

func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader) {
	bw := bufio.NewWriter(conn)
	// Ack the negotiation by echoing the magic: the client knows the
	// server speaks binary before it sends its first frame.
	if _, err := bw.WriteString(frameMagic); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	window := s.maxInflight
	// Writer queue: window dispatchers plus the reader (shed/decode
	// replies) can be blocked sending at once; one extra slot keeps the
	// reader from waiting on a full window's completions.
	out := make(chan binResp, window+1)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeResponses(bw, out)
	}()
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	var rbuf []byte
	var shedTimer *time.Timer
	for {
		id, op, payload, nbuf, err := readFrame(br, rbuf)
		rbuf = nbuf
		if err != nil {
			break // disconnect or corrupt framing: drop the connection
		}
		start := time.Now()
		req, derr := decodeRequest(op, payload)
		s.frameHist.Observe(time.Since(start))
		if derr != nil {
			// The frame itself was sound (length and CRC checked), so
			// the stream is still in sync: answer the bad payload
			// in-band and keep serving.
			out <- binResp{id: id, resp: Response{Err: derr.Error()}}
			continue
		}
		// Window admission: take a slot immediately if one is free,
		// otherwise queue for at most shedWait, then shed. The reader
		// never blocks unboundedly, so a slow op can delay — but not
		// wedge — the whole connection.
		select {
		case sem <- struct{}{}:
		default:
			if shedTimer == nil {
				shedTimer = time.NewTimer(s.shedWait)
			} else {
				shedTimer.Reset(s.shedWait)
			}
			select {
			case sem <- struct{}{}:
				if !shedTimer.Stop() {
					<-shedTimer.C
				}
			case <-shedTimer.C:
				s.sheds.Add(1)
				out <- binResp{id: id, resp: Response{Err: ErrOverloaded.Error(), Retry: true}}
				continue
			}
		}
		if !s.beginOp() {
			// Draining: refuse and stop reading, mirroring the JSON
			// loop; in-flight dispatchers below still complete and
			// their responses still flush.
			<-sem
			out <- binResp{id: id, resp: Response{Err: ErrShuttingDown.Error()}}
			break
		}
		s.inflight.Add(1)
		wg.Add(1)
		go func(id uint64, req Request) {
			defer wg.Done()
			start := time.Now()
			resp := s.dispatch(req)
			s.observeOp(req.Op, start)
			s.inflight.Add(-1)
			<-sem
			out <- binResp{id: id, resp: resp, counted: true}
		}(id, req)
	}
	wg.Wait()
	close(out)
	writerWG.Wait()
}

// writeResponses is the single writer goroutine of one binary
// connection: it frames responses in completion order into a reused
// buffer and flushes only when its queue is empty, so bursts of
// completions coalesce into few socket writes. beginOp slots held by
// counted responses are released only after the flush that made their
// frames visible — or immediately once the connection is known broken,
// so a dead peer cannot wedge a drain.
func (s *Server) writeResponses(bw *bufio.Writer, out chan binResp) {
	var buf []byte
	unflushed := 0
	release := func() {
		for ; unflushed > 0; unflushed-- {
			s.endOp()
		}
	}
	broken := false
	for m := range out {
		if m.counted {
			unflushed++
		}
		if broken {
			release()
			continue
		}
		buf = beginFrame(buf[:0], m.id, 0)
		var err error
		if buf, err = appendResponse(buf, &m.resp); err != nil {
			// Response encoding failed (stats marshal): the stream is
			// still in sync, so frame the error instead.
			buf = beginFrame(buf[:0], m.id, 0)
			buf, _ = appendResponse(buf, &Response{Err: err.Error()})
		}
		buf = finishFrame(buf)
		if _, err := bw.Write(buf); err != nil {
			broken = true
			release()
			continue
		}
		if len(out) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
			}
			release()
		}
	}
	if !broken {
		bw.Flush()
	}
	release()
}
