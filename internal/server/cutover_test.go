package server

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
)

// TestFailoverCutoverOverTCP runs the whole availability story over
// real sockets: a client that mistakenly talks to the follower is
// redirected to the leader; an admin promotes the follower over the
// wire (fence exchange, drain, in-place role swap); clients still
// pointed at the deposed leader are redirected to the new one; and
// every write the old leader ever acked survives the cutover
// byte-for-byte.
func TestFailoverCutoverOverTCP(t *testing.T) {
	c, db, leaderAddr := startWALLeader(t)
	seatSchema(t, c)

	// Acked traffic on the old leader, including one live pending txn.
	if _, err := c.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("-Available(1, s), +Bookings('Donald', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}

	// A promotable follower server, replicating over TCP.
	f := replica.NewFollower(&ReplicaClient{Addr: leaderAddr, Timeout: 5 * time.Second})
	f.SetLeaderAddr(leaderAddr)
	if err := f.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	fl := listenTCP(t)
	followerAddr := fl.Addr().String()
	fsrv := NewFollower(f)
	fsrv.EnablePromotion(replica.PromoteConfig{
		WAL: quantumdb.Options{
			WALPath:     filepath.Join(t.TempDir(), "promoted.wal"),
			WALSegments: 2,
		},
		Addr: followerAddr,
	})
	go fsrv.Serve(fl)

	// Pre-promotion cutover: a client pointed at the follower issues a
	// mutation, gets the structured leader-moved redirect, and lands it
	// on the leader — transparently, inside one roundTrip.
	rc := dialT(t, followerAddr)
	if _, err := rc.Submit("-Available(1, s), +Bookings('Goofy', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatalf("redirected submit: %v", err)
	}
	if got := rc.Addr(); got != leaderAddr {
		t.Fatalf("client followed redirect to %q, want leader %q", got, leaderAddr)
	}
	if err := rc.GroundAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh inventory, then one txn left pending so the failover carries
	// a live superposition (and Daisy has a seat after the cutover).
	if err := c.Exec("+Available(1, '2A'), +Available(1, '2B'), +Available(1, '2C')"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("-Available(1, s), +Bookings('Pluto', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}

	// What the old leader acked, as the clients saw it.
	want, err := c.SnapRead("Bookings(n, 1, s)")
	if err != nil {
		t.Fatal(err)
	}
	pendingBefore, err := c.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if pendingBefore == 0 {
		t.Fatal("no pending txn to carry across the failover")
	}

	// Promote over the wire: admin client against the follower. The
	// fence exchange runs follower→leader over TCP; the drain collects
	// the sealed tail; the server swaps roles in place.
	fc := dialT(t, followerAddr)
	term, seq, err := fc.Promote(false)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if term != 1 || seq == 0 {
		t.Fatalf("promoted at term=%d seq=%d, want term 1 and a nonzero seq", term, seq)
	}
	// The verb is idempotent on an already-promoted server.
	if term2, _, err := fc.Promote(false); err != nil || term2 != 1 {
		t.Fatalf("second promote: term=%d err=%v", term2, err)
	}

	// Post-promotion cutover: the client still pointed at the DEPOSED
	// leader mutates, gets ErrDemoted plus the winner's address, and the
	// write lands on the new leader.
	if _, err := c.Submit("-Available(1, s), +Bookings('Daisy', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatalf("post-failover submit via old leader: %v", err)
	}
	if got := c.Addr(); got != followerAddr {
		t.Fatalf("client cut over to %q, want new leader %q", got, followerAddr)
	}
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}

	// Zero acked-write loss: everything the old leader acked is visible
	// on the new one (Daisy's post-failover booking rides on top).
	got, err := fc.SnapRead("Bookings(n, 1, s)")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range want {
		found := false
		for _, g := range got {
			if reflect.DeepEqual(row, g) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("acked row %v lost in failover; new leader has %v", row, got)
		}
	}
	if nt, err := fc.Term(); err != nil || nt != 1 {
		t.Fatalf("new leader term = %d, err=%v; want 1", nt, err)
	}
	if ot, err := c.Term(); err != nil || ot != 1 {
		t.Fatalf("old leader term = %d, err=%v; want fenced at 1", ot, err)
	}
	if db.Engine().Term() != 1 {
		t.Fatalf("deposed engine term %d, want 1", db.Engine().Term())
	}

	// The new leader serves stats merged from both lives: replication
	// counters from its follower past, engine counters from its present.
	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Promotions != 1 || st.BatchesReplayed == 0 {
		t.Fatalf("promoted stats: promotions=%d replayed=%d", st.Promotions, st.BatchesReplayed)
	}
}

// TestFollowerLongPollOverTCP pins push-style shipping end to end: a
// pull with a wait budget parks at the leader until a batch commits,
// then returns it — no polling interval in the latency path.
func TestFollowerLongPollOverTCP(t *testing.T) {
	c, db, leaderAddr := startWALLeader(t)
	seatSchema(t, c)
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}

	rc := &ReplicaClient{Addr: leaderAddr, Timeout: 5 * time.Second, Wait: 10 * time.Second}
	f := replica.NewFollower(rc)
	f.LongPoll = true
	if err := f.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	// Park a pull, then commit a batch ~50ms later; the parked pull must
	// return it well before the 10s wait budget.
	start := time.Now()
	go func() {
		time.Sleep(50 * time.Millisecond)
		c.Exec("+Available(2, '9Z')")
	}()
	done := make(chan error, 1)
	go func() {
		for {
			n, err := f.Sync()
			if err != nil || n > 0 {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("long-poll sync: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("parked pull never woke for the new batch")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("long-poll took %v; the park is not waking on commit", elapsed)
	}
	if f.AppliedSeq() != db.Engine().WALSeq() {
		t.Fatalf("applied %d, leader %d", f.AppliedSeq(), db.Engine().WALSeq())
	}
}
