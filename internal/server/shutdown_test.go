package server

import (
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	quantumdb "repro"
	"repro/internal/telemetry"
)

// TestServerGracefulShutdown exercises the drain protocol: Serve
// returns ErrShuttingDown, in-flight work completes, and both new
// connections and new requests on surviving connections are refused.
func TestServerGracefulShutdown(t *testing.T) {
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seatSchema(t, c)
	if _, err := c.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("Serve returned %v, want ErrShuttingDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// The listener is closed: new connections fail outright (or are
	// dropped before a response).
	if c2, err := Dial(l.Addr().String()); err == nil {
		if perr := c2.Ping(); perr == nil {
			t.Fatal("post-shutdown connection served a request")
		}
		c2.Close()
	}
	// The surviving connection is closed or refused; either way Ping
	// must not succeed.
	if err := c.Ping(); err == nil {
		t.Fatal("post-shutdown request on old connection succeeded")
	}
	// Idempotent: a second drain returns immediately.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// The engine survived the drain — the drained transaction grounds.
	if err := db.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Grounded != 1 {
		t.Fatalf("grounded = %d, want 1", st.Grounded)
	}
}

// TestServerShutdownUnderLoad drains while clients are mid-burst: every
// request either succeeds or fails cleanly (shutdown refusal or closed
// connection), and nothing hangs.
func TestServerShutdownUnderLoad(t *testing.T) {
	db, err := quantumdb.Open(quantumdb.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	go srv.Serve(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seatSchema(t, c)

	done := make(chan struct{})
	go func() {
		defer close(done)
		cl, err := Dial(l.Addr().String())
		if err != nil {
			return
		}
		defer cl.Close()
		for i := 0; i < 10000; i++ {
			if err := cl.Ping(); err != nil {
				return // drain refused or connection closed: expected
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client goroutine hung through shutdown")
	}
}

// TestServerMetricsSmoke is the in-process half of CI's metrics-smoke
// job: drive every protocol verb through a live server, scrape the
// registry's HTTP handler, and validate that the exposition parses and
// carries every registered family plus nonzero op latencies.
func TestServerMetricsSmoke(t *testing.T) {
	c, db := startServer(t)
	seatSchema(t, c)
	id, err := c.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("-Available(1, s), +Bookings('Minnie', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Ground(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("Bookings(Name, Fno, Sno)"); err != nil {
		t.Fatal(err)
	}
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pending(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	reg := db.Metrics()
	rec := httptest.NewRecorder()
	reg.Handler(db.SlowOps()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics -> %d", rec.Code)
	}
	body := rec.Body.Bytes()
	if err := telemetry.CheckExposition(body, reg.Names()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	out := string(body)
	for _, want := range []string{
		"qdb_submitted_total 2",
		"qdb_grounded_total 2",
		"qdb_reads_total 1",
		`qdb_op_duration_seconds_count{op="submit"} 2`,
		`qdb_op_stage_duration_seconds_count{op="submit",stage="wal"} 2`,
		`qdb_server_op_duration_seconds_count{op="txn"} 2`,
		`qdb_server_op_duration_seconds_count{op="ping"} 1`,
		"qdb_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, out)
		}
	}
	if snap, ok := reg.FindHistogram("qdb_op_duration_seconds", `op="ground"`); !ok || snap.Count == 0 {
		t.Fatalf("ground op histogram empty (ok=%v count=%d)", ok, snap.Count)
	}
}
