package server

import (
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
)

func listenTCP(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// startWALLeader boots a WAL-backed database behind a TCP server — only
// a logged leader can ship its log.
func startWALLeader(t *testing.T) (*Client, *quantumdb.DB, string) {
	t.Helper()
	db, err := quantumdb.Open(quantumdb.Options{
		WALPath:     filepath.Join(t.TempDir(), "leader.wal"),
		WALSegments: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l := listenTCP(t)
	srv := New(db)
	go srv.Serve(l)
	c := dialT(t, l.Addr().String())
	return c, db, l.Addr().String()
}

// TestReplicationOverTCP wires the whole network leg together: a
// follower bootstraps from a live leader through ReplicaClient, replays
// pulled batches, and a follower-mode server answers lag, snapread,
// pending, and stats from the replayed store while refusing mutations.
func TestReplicationOverTCP(t *testing.T) {
	c, db, leaderAddr := startWALLeader(t)
	seatSchema(t, c) // schema rides the bootstrap image, so create it first

	if _, err := c.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}

	f := replica.NewFollower(&ReplicaClient{Addr: leaderAddr, Timeout: 5 * time.Second})
	if err := f.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	// Post-bootstrap churn, including one transaction left pending so the
	// follower replays a live superposition, not just ground state.
	if _, err := c.Submit("-Available(1, s), +Bookings('Goofy', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}
	if err := c.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("-Available(1, s), +Bookings('Donald', 1, s) :-1 Available(1, s)"); err != nil {
		t.Fatal(err)
	}

	idle := 0
	for rounds := 0; idle < 2; rounds++ {
		if rounds > 1000 {
			t.Fatalf("no convergence: applied %d, leader %d", f.AppliedSeq(), db.Engine().WALSeq())
		}
		n, err := f.Sync()
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		if n == 0 && f.AppliedSeq() >= db.Engine().WALSeq() {
			idle++
		}
	}

	fl := listenTCP(t)
	fsrv := NewFollower(f)
	go fsrv.Serve(fl)
	fc := dialT(t, fl.Addr().String())

	if err := fc.Ping(); err != nil {
		t.Fatal(err)
	}
	seq, applied, lag, err := fc.Lag()
	if err != nil {
		t.Fatal(err)
	}
	if lag != 0 || applied != seq || applied != db.Engine().WALSeq() {
		t.Fatalf("follower lag op: seq=%d applied=%d lag=%d (leader %d)",
			seq, applied, lag, db.Engine().WALSeq())
	}
	if _, lapplied, llag, err := c.Lag(); err != nil || lapplied == 0 || llag != 0 {
		t.Fatalf("leader lag op: applied=%d lag=%d err=%v", lapplied, llag, err)
	}

	// The follower's snapshot reads must match the leader's, byte for
	// byte on the wire.
	for _, q := range []string{"Bookings(n, 1, s)", "Available(1, s)"} {
		want, err := c.SnapRead(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fc.SnapRead(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("snapread %q diverges:\nleader   %v\nfollower %v", q, want, got)
		}
	}

	if n, err := fc.Pending(); err != nil || n != 1 {
		t.Fatalf("follower pending = %d, err=%v; want the one unground txn", n, err)
	}
	if st, err := fc.Stats(); err != nil || st.FollowerAppliedSeq == 0 || st.BatchesReplayed == 0 {
		t.Fatalf("follower stats unpopulated: %+v err=%v", st, err)
	}

	// Every mutating verb must be refused.
	if _, err := fc.Submit("-Available(1, s), +Bookings('Daisy', 1, s) :-1 Available(1, s)"); err == nil ||
		!strings.Contains(err.Error(), "read-only follower") {
		t.Fatalf("follower accepted a txn: %v", err)
	}
	if err := fc.Exec("+Available(2, '9Z')"); err == nil ||
		!strings.Contains(err.Error(), "read-only follower") {
		t.Fatalf("follower accepted an exec: %v", err)
	}
	if err := fc.GroundAll(); err == nil ||
		!strings.Contains(err.Error(), "read-only follower") {
		t.Fatalf("follower accepted a groundall: %v", err)
	}
}

// TestReplicaClientLeaderRestartProof documents the dial-per-call
// contract: a pull against a dead address fails cleanly (no hung
// stream), and the same client works again once a leader is back.
func TestReplicaClientDeadLeader(t *testing.T) {
	rc := &ReplicaClient{Addr: "127.0.0.1:1", Timeout: 500 * time.Millisecond}
	if _, err := rc.Pull(0, 0); err == nil {
		t.Fatal("pull against a dead leader succeeded")
	}
	if _, _, err := rc.Bootstrap(); err == nil {
		t.Fatal("bootstrap against a dead leader succeeded")
	}
}
