package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// PipeClient is the pipelined form of Client: many goroutines issue
// requests concurrently over ONE binary connection, each request
// stamped with a fresh ID, and a reader goroutine demultiplexes the
// out-of-order response stream back to callers by echoed ID. This is
// the client shape the server's data plane is built for — a window of
// requests in flight keeps the dispatch pool fed from a single socket.
//
// PipeClient is deliberately thinner than Client: no retries, no
// redirect following, no reconnects. A transport error poisons the
// whole pipe (every in-flight and future call gets it); the caller —
// the load generator, a connection pool — replaces the pipe. Shed
// responses (Response.Retry) are returned to the caller undecorated,
// who decides whether to back off and reissue.
type PipeClient struct {
	conn net.Conn

	// wmu serializes writers: one frame is encoded into the shared
	// write buffer and written with a single conn.Write at a time.
	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]chan pipeReply
	nextID  uint64
	err     error // sticky: first transport failure, fanned out by the reader
}

type pipeReply struct {
	resp Response
	err  error
}

// DialPipe connects a pipelined binary-protocol client.
func DialPipe(addr string) (*PipeClient, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(dialTimeout))
	if _, err := conn.Write([]byte(frameMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	var echo [len(frameMagic)]byte
	if _, err := io.ReadFull(br, echo[:]); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	if string(echo[:]) != frameMagic {
		conn.Close()
		return nil, fmt.Errorf("server: %s did not ack the binary protocol", addr)
	}
	p := &PipeClient{conn: conn, pending: make(map[uint64]chan pipeReply)}
	go p.readLoop(br)
	return p, nil
}

// Do issues one request and blocks for its response; any number of Do
// calls may be in flight concurrently. The server's response order is
// completion order, not issue order — the demux hides that from
// callers.
func (p *PipeClient) Do(req Request) (Response, error) {
	op, ok := opCodes[req.Op]
	if !ok {
		return Response{}, fmt.Errorf("server: unknown op %q", req.Op)
	}
	ch := make(chan pipeReply, 1)
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return Response{}, err
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	p.mu.Unlock()

	p.wmu.Lock()
	p.wbuf = beginFrame(p.wbuf[:0], id, op)
	p.wbuf = appendRequest(p.wbuf, &req)
	p.wbuf = finishFrame(p.wbuf)
	_, err := p.conn.Write(p.wbuf)
	p.wmu.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		return Response{}, err
	}
	r := <-ch
	return r.resp, r.err
}

// readLoop is the demux: it owns the read half of the connection and
// the reused frame buffer, and fans each response out to the caller
// that registered its ID. A read error is terminal for the pipe.
func (p *PipeClient) readLoop(br *bufio.Reader) {
	var rbuf []byte
	for {
		id, _, payload, nbuf, err := readFrame(br, rbuf)
		rbuf = nbuf
		if err != nil {
			p.fail(err)
			return
		}
		resp, derr := decodeResponse(payload)
		p.mu.Lock()
		ch := p.pending[id]
		delete(p.pending, id)
		p.mu.Unlock()
		if ch != nil {
			if derr != nil {
				ch <- pipeReply{err: derr}
			} else {
				ch <- pipeReply{resp: resp}
			}
		}
	}
}

// fail latches the pipe's first error and delivers it to every waiter.
// Reply channels are buffered (capacity 1) and each ID is delivered at
// most once, so the fan-out cannot block.
func (p *PipeClient) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	for id, ch := range p.pending {
		delete(p.pending, id)
		ch <- pipeReply{err: err}
	}
	p.mu.Unlock()
}

// Close tears the pipe down; in-flight calls fail with the resulting
// read error.
func (p *PipeClient) Close() error {
	return p.conn.Close()
}
