// Package server exposes a quantum database over TCP with a JSON-lines
// protocol, making the middle-tier architecture of §4 (Figure 4) an
// actual network service: application clients submit resource and
// non-resource transactions; reads collapse server-side state exactly
// as in-process calls do, and snapread serves collapse-free reads from
// a copy-on-write snapshot — the read-scale path, which never blocks on
// (or stalls) concurrent grounding and writes.
//
// Protocol: one JSON request object per line, one JSON response per
// line. See Request and Response for the schema. The protocol is
// deliberately plain so that non-Go clients can speak it with any JSON
// library.
//
// Requests from different connections dispatch concurrently: the engine
// is sharded by partition (each Submit/Ground/Read/Write acquires only
// the partitions it touches), admissions are optimistic (each Submit's
// chain solve runs outside the admission lock, so submits from many
// connections overlap end to end unless qdbd runs -serial-admission),
// the coordinator's registry has its own lock, and GroundAll and read
// collapse fan out over the engine's worker pool
// (quantumdb.Options.Workers, the -workers flag on qdbd). Within one
// connection, requests are processed in order — the JSON-lines protocol
// has no request IDs, so responses must match request order.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	quantumdb "repro"
)

// Request is one client command.
type Request struct {
	// Op is one of: create, exec, txn, etxn, sql, read, snapread,
	// preview, ground, groundall, pending, stats, ping.
	Op string `json:"op"`
	// Txn carries the transaction text (Datalog-like for txn/etxn, SQL
	// for sql).
	Txn string `json:"txn,omitempty"`
	// Query carries the conjunctive query for read/preview.
	Query string `json:"query,omitempty"`
	// Facts carries the signed ground atoms for exec.
	Facts string `json:"facts,omitempty"`
	// Tag and Partner mark entangled submissions (etxn).
	Tag     string `json:"tag,omitempty"`
	Partner string `json:"partner,omitempty"`
	// ID selects the transaction for ground.
	ID int64 `json:"id,omitempty"`
	// Table describes the relation for create.
	Table *TableSpec `json:"table,omitempty"`
}

// TableSpec mirrors quantumdb.Table for the wire.
type TableSpec struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Key     []int    `json:"key,omitempty"`
	Indexes [][]int  `json:"indexes,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK      bool                `json:"ok"`
	Err     string              `json:"err,omitempty"`
	ID      int64               `json:"id,omitempty"`
	Rows    []map[string]string `json:"rows,omitempty"`
	IDs     []int64             `json:"ids,omitempty"`
	Pending int                 `json:"pending,omitempty"`
	Stats   *quantumdb.Stats    `json:"stats,omitempty"`
}

// Server serves one quantum database to many connections. Engine calls
// synchronize internally per partition; the coordinator is safe for
// concurrent use, so no server-level lock serializes dispatch.
type Server struct {
	db *quantumdb.DB
	co *quantumdb.Coordinator
}

// New wraps db.
func New(db *quantumdb.DB) *Server {
	return &Server{db: db, co: db.NewCoordinator()}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage: drop the connection
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	switch req.Op {
	case "ping":
		return Response{OK: true}
	case "create":
		if req.Table == nil {
			return fail(fmt.Errorf("create requires table"))
		}
		t := req.Table
		if err := s.db.CreateTable(quantumdb.Table{
			Name: t.Name, Columns: t.Columns, Key: t.Key, Indexes: t.Indexes,
		}); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "exec":
		if err := s.db.Exec(req.Facts); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "txn":
		id, err := s.db.Submit(req.Txn)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id, Pending: s.db.Pending()}
	case "etxn":
		id, err := s.co.Submit(req.Txn, req.Tag, req.Partner)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id, Pending: s.db.Pending()}
	case "sql":
		id, err := s.db.SubmitSQL(req.Txn)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id, Pending: s.db.Pending()}
	case "read":
		rows, err := s.db.Query(req.Query)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Rows: rowsOut(rows)}
	case "snapread":
		// Collapse-free read: evaluated against a one-shot snapshot, so it
		// observes committed state only (pending transactions stay
		// superposed) and never contends with appliers.
		snap := s.db.Snapshot()
		rows, err := snap.Query(req.Query)
		snap.Release()
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Rows: rowsOut(rows)}
	case "preview":
		ids, err := s.db.Preview(req.Query)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, IDs: ids}
	case "ground":
		if err := s.db.Ground(req.ID); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "groundall":
		if err := s.db.GroundAll(); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "pending":
		return Response{OK: true, Pending: s.db.Pending()}
	case "stats":
		st := s.db.Stats()
		return Response{OK: true, Stats: &st}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// rowsOut converts rows to the wire's quoted-string maps.
func rowsOut(rows []quantumdb.Row) []map[string]string {
	out := make([]map[string]string, len(rows))
	for i, r := range rows {
		m := make(map[string]string, len(r))
		for k, v := range r {
			m[k] = v.Quoted()
		}
		out[i] = m
	}
	return out
}
