// Package server exposes a quantum database over TCP, making the
// middle-tier architecture of §4 (Figure 4) an actual network service:
// application clients submit resource and non-resource transactions;
// reads collapse server-side state exactly as in-process calls do, and
// snapread serves collapse-free reads from a copy-on-write snapshot —
// the read-scale path, which never blocks on (or stalls) concurrent
// grounding and writes.
//
// Two protocols share every port, negotiated per connection. A client
// that opens with the binary magic preamble (frame.go) gets the
// length-prefixed CRC-framed binary protocol with request pipelining:
// frames carry client-chosen request IDs, a bounded per-connection
// inflight window dispatches ops concurrently onto the engine, and
// responses return in completion order — out of order — matched back
// by ID (pipeline.go). Anything else is served the original JSON-lines
// protocol unchanged: one JSON request object per line, one JSON
// response per line, strictly in order (no request IDs). See Request
// and Response for the schema; the JSON protocol is deliberately plain
// so that non-Go clients can speak it with any JSON library.
//
// Requests from different connections — and, on the binary protocol,
// within one connection — dispatch concurrently: the engine is sharded
// by partition (each Submit/Ground/Read/Write acquires only the
// partitions it touches), admissions are optimistic (each Submit's
// chain solve runs outside the admission lock, so submits from many
// connections overlap end to end unless qdbd runs -serial-admission),
// the coordinator's registry has its own lock, and GroundAll and read
// collapse fan out over the engine's worker pool
// (quantumdb.Options.Workers, the -workers flag on qdbd). The batch
// verb admits several transactions in one amortized admission cycle
// (core.SubmitBatch). Backpressure: SetLimits bounds the per-connection
// window and the connection count, and a request that waits longer than
// the shed threshold for a window slot is refused with a structured
// retryable overloaded error instead of stalling the read loop.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	quantumdb "repro"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/telemetry"
)

// Request is one client command.
type Request struct {
	// Op is one of: create, exec, txn, etxn, sql, read, snapread,
	// preview, ground, groundall, pending, stats, ping.
	Op string `json:"op"`
	// Txn carries the transaction text (Datalog-like for txn/etxn, SQL
	// for sql).
	Txn string `json:"txn,omitempty"`
	// Query carries the conjunctive query for read/preview.
	Query string `json:"query,omitempty"`
	// Facts carries the signed ground atoms for exec.
	Facts string `json:"facts,omitempty"`
	// Tag and Partner mark entangled submissions (etxn).
	Tag     string `json:"tag,omitempty"`
	Partner string `json:"partner,omitempty"`
	// ID selects the transaction for ground.
	ID int64 `json:"id,omitempty"`
	// Table describes the relation for create.
	Table *TableSpec `json:"table,omitempty"`
	// After is repl.pull's resume watermark: return batches with
	// sequence numbers strictly above it.
	After uint64 `json:"after,omitempty"`
	// Term carries the caller's replication term: on repl.pull the
	// follower's observed term (a leader seeing a higher one demotes
	// itself), on repl.fence the proposed new term.
	Term uint64 `json:"term,omitempty"`
	// Addr is the caller's serving address, advertised on repl.fence so
	// the deposed leader can redirect clients to the winner.
	Addr string `json:"addr,omitempty"`
	// WaitMS asks repl.pull to long-poll: park up to this many
	// milliseconds for new batches instead of returning empty.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// Force marks a promote that skips the fence exchange (the leader
	// is known dead and unreachable).
	Force bool `json:"force,omitempty"`
	// Txns carries the transaction texts of a batch submission; the
	// server admits them through one amortized admission cycle and
	// answers per-transaction IDs/Errs aligned with this slice.
	Txns []string `json:"txns,omitempty"`
}

// TableSpec mirrors quantumdb.Table for the wire.
type TableSpec struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Key     []int    `json:"key,omitempty"`
	Indexes [][]int  `json:"indexes,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK      bool                `json:"ok"`
	Err     string              `json:"err,omitempty"`
	ID      int64               `json:"id,omitempty"`
	Rows    []map[string]string `json:"rows,omitempty"`
	IDs     []int64             `json:"ids,omitempty"`
	Pending int                 `json:"pending,omitempty"`
	Stats   *quantumdb.Stats    `json:"stats,omitempty"`
	// Replication fields. Image is repl.bootstrap's checkpoint payload
	// (base64 on the wire); Seq is its WAL stamp, and on repl.pull/lag
	// the leader's current WAL sequence. Batches carries repl.pull's
	// shipped suffix; Resync demands a fresh bootstrap (the leader
	// truncated past After). Applied and Lag serve the lag op on both
	// leader (best subscriber ack) and follower (own watermark).
	Image   []byte      `json:"image,omitempty"`
	Seq     uint64      `json:"seq,omitempty"`
	Batches []WireBatch `json:"batches,omitempty"`
	Resync  bool        `json:"resync,omitempty"`
	Applied uint64      `json:"applied,omitempty"`
	Lag     uint64      `json:"lag,omitempty"`
	// Failover fields. Term is the responder's replication term (on
	// repl.pull, repl.fence, promote, lag). Granted reports a fence
	// exchange's outcome. Redirect rides on refused mutations: the
	// structured leader-moved hint retrying clients follow.
	Term     uint64    `json:"term,omitempty"`
	Granted  bool      `json:"granted,omitempty"`
	Redirect *Redirect `json:"redirect,omitempty"`
	// Errs carries batch per-transaction outcomes, aligned with the
	// request's Txns ("" = admitted, IDs[i] valid). Retry marks a
	// structured retryable refusal (the server shed the request under
	// load); clients back off and retry without dropping the
	// connection.
	Errs  []string `json:"errs,omitempty"`
	Retry bool     `json:"retry,omitempty"`
	// vrows carries read results as typed values for the binary
	// encoder, which ships them through the WAL's value encoding; the
	// JSON write path materializes Rows from it (rowsOut) so the
	// quoted-string conversion is paid only on the JSON wire.
	vrows []quantumdb.Row
}

// Redirect is the structured leader-moved payload: where the current
// leader serves and at what term. Clients (server.Client) follow it
// automatically; scripted callers can read it off the error response.
type Redirect struct {
	Addr string `json:"addr"`
	Term uint64 `json:"term"`
}

// WireBatch mirrors wal.Batch for the JSON wire; record payloads ride
// as base64. Term is the fencing token the batch was appended under.
type WireBatch struct {
	Seq     uint64       `json:"seq"`
	Term    uint64       `json:"term,omitempty"`
	Records []WireRecord `json:"records"`
}

// WireRecord mirrors wal.Record.
type WireRecord struct {
	Type    uint8  `json:"type"`
	Payload []byte `json:"payload,omitempty"`
}

// ops enumerates the protocol verbs; each gets a request-latency series
// (qdb_server_op_duration_seconds{op=...}) in the engine's registry.
// Unknown verbs land in "other".
var ops = []string{
	"create", "exec", "txn", "etxn", "sql", "read", "snapread",
	"preview", "ground", "groundall", "pending", "stats", "ping",
	"lag", "repl.bootstrap", "repl.pull", "repl.fence", "promote",
	"batch", "other",
}

// Server serves one quantum database to many connections. Engine calls
// synchronize internally per partition; the coordinator is safe for
// concurrent use, so no server-level lock serializes dispatch — the
// server's own mutex guards only lifecycle state (drain bookkeeping),
// taken once per request, never across engine calls.
type Server struct {
	// role is what this server currently is — leader (db/co/shipper
	// set) or follower (fol set). It is swapped atomically by a
	// successful promote verb: in-flight dispatches finish against the
	// role they loaded, new requests see the new one. A promoted role
	// keeps its fol pointer (sealed, read side only) for promotion and
	// term bookkeeping in stats.
	role   atomic.Pointer[serverRole]
	opHist map[string]*telemetry.Histogram
	// frameHist times binary frame reception+decode, first length byte
	// to decoded Request (qdb_server_frame_decode_seconds).
	frameHist *telemetry.Histogram
	// redirects counts leader-moved hints attached to refused
	// mutations (qdb_server_redirects_total).
	redirects atomic.Int64
	// inflight gauges dispatches currently executing across all binary
	// connections (qdb_server_inflight); sheds counts requests refused
	// with the retryable overloaded error (qdb_server_shed_total);
	// connsRefused counts connections dropped at the maxConns cap.
	inflight     atomic.Int64
	sheds        atomic.Int64
	connsRefused atomic.Int64
	// Backpressure knobs (SetLimits; fixed before Serve). maxInflight
	// bounds one binary connection's pipelined window, maxConns bounds
	// concurrent connections (0 = unlimited), shedWait is how long a
	// request queues for a window slot before being shed.
	maxInflight int
	maxConns    int
	shedWait    time.Duration

	mu         sync.Mutex
	promoteCfg *replica.PromoteConfig // armed by EnablePromotion
	draining   bool
	active     int           // dispatches currently executing
	drained    chan struct{} // closed when active hits 0 while draining
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
}

// serverRole is one immutable snapshot of what the server fronts.
type serverRole struct {
	db      *quantumdb.DB
	co      *quantumdb.Coordinator
	shipper *replica.Shipper  // leader-side log shipping (nil on followers)
	fol     *replica.Follower // follower mode; retained after promotion for stats
}

func (r *serverRole) leader() bool { return r.db != nil }

// New wraps db. Register a Server at most once per database: it adds
// the server-side request-latency series to the database's registry.
func New(db *quantumdb.DB) *Server {
	s := newServer(db.Metrics())
	s.role.Store(&serverRole{
		db: db, co: db.NewCoordinator(),
		shipper: &replica.Shipper{DB: db.Engine(), MaxBatches: shipChunk},
	})
	return s
}

// NewFollower wraps a replica follower as a read-only server: it
// answers ping, snapread, peek-style reads, pending, stats, and lag
// from the replayed store, and refuses every mutation with
// ErrReadOnlyFollower (plus a Redirect when the leader is known).
// Request-latency series land in the follower's own registry. If
// promotion is armed (EnablePromotion), the promote verb turns this
// server into a leader in place.
func NewFollower(f *replica.Follower) *Server {
	s := newServer(f.Metrics())
	s.role.Store(&serverRole{fol: f})
	return s
}

// Default backpressure knobs: a 64-deep pipelined window per binary
// connection, unlimited connections, and a 50ms queue wait before a
// request is shed with the retryable overloaded error.
const (
	defaultMaxInflight = 64
	defaultShedWait    = 50 * time.Millisecond
)

func newServer(reg *telemetry.Registry) *Server {
	s := &Server{
		opHist:      make(map[string]*telemetry.Histogram, len(ops)),
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]struct{}),
		maxInflight: defaultMaxInflight,
		shedWait:    defaultShedWait,
	}
	for _, op := range ops {
		s.opHist[op] = reg.Seconds("qdb_server_op_duration_seconds",
			fmt.Sprintf("op=%q", op),
			"Whole server request latency, decode to response write.")
	}
	s.frameHist = reg.Seconds("qdb_server_frame_decode_seconds", "",
		"Binary frame reception and decode latency, length prefix to Request.")
	reg.CounterFunc("qdb_server_redirects_total",
		"Leader-moved redirects attached to refused mutations.",
		s.redirects.Load)
	reg.GaugeFunc("qdb_server_inflight",
		"Dispatches currently executing across pipelined connections.",
		s.inflight.Load)
	reg.CounterFunc("qdb_server_shed_total",
		"Requests refused with the retryable overloaded error.",
		s.sheds.Load)
	reg.CounterFunc("qdb_server_conns_refused_total",
		"Connections dropped at the -max-conns cap.",
		s.connsRefused.Load)
	reg.GaugeFunc("qdb_server_conns",
		"Client connections currently registered.",
		func() int64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return int64(n)
		})
	return s
}

// SetLimits tunes the data-plane backpressure knobs: the per-connection
// pipelined inflight window (binary protocol), the concurrent
// connection cap (0 = unlimited), and how long a request may queue for
// a window slot before being shed with ErrOverloaded. Zero or negative
// maxInflight/shedWait keep the defaults. Call before Serve — the
// values are read lock-free by connection loops.
func (s *Server) SetLimits(maxInflight, maxConns int, shedWait time.Duration) {
	if maxInflight > 0 {
		s.maxInflight = maxInflight
	}
	if maxConns > 0 {
		s.maxConns = maxConns
	}
	if shedWait > 0 {
		s.shedWait = shedWait
	}
}

// Sheds reports how many requests were refused with the retryable
// overloaded error (the qdb_server_shed_total counter).
func (s *Server) Sheds() int64 { return s.sheds.Load() }

// DB returns the database this server currently fronts — nil in
// follower mode. After an in-place promotion it returns the promoted
// engine, which the process owner must Close on shutdown (the follower
// path has no engine to close).
func (s *Server) DB() *quantumdb.DB {
	return s.role.Load().db
}

// shipChunk caps one repl.pull response, bounding response size and
// follower apply chunks; followers just pull again.
const shipChunk = 512

// Serve accepts connections until the listener closes (or Shutdown
// closes it). A Serve return caused by Shutdown reports ErrShuttingDown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrShuttingDown
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrShuttingDown
			}
			return err
		}
		go s.handle(conn)
	}
}

// ErrShuttingDown is returned by Serve when Shutdown closed its
// listener, and recorded in responses refused during the drain.
var ErrShuttingDown = fmt.Errorf("server: shutting down")

// ErrOverloaded is the structured retryable refusal a request receives
// when it queued longer than the shed threshold for an inflight-window
// slot. It travels with Response.Retry set, so clients back off and
// retry on the same connection instead of treating it as a hard error.
var ErrOverloaded = fmt.Errorf("server: overloaded: inflight window full")

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	if s.draining || (s.maxConns > 0 && len(s.conns) >= s.maxConns) {
		refused := !s.draining
		s.mu.Unlock()
		if refused {
			s.connsRefused.Add(1)
		}
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Protocol negotiation: a binary client's very first bytes are the
	// magic preamble; a JSON-lines client's first byte is '{' (or
	// whitespace) and its first request is longer than the magic, so
	// peeking never stalls either kind. On a match the connection runs
	// the pipelined binary loop; otherwise the peeked bytes stay
	// buffered and the JSON loop reads them as request text.
	br := bufio.NewReader(conn)
	if peek, err := br.Peek(len(frameMagic)); err == nil && string(peek) == frameMagic {
		br.Discard(len(frameMagic))
		s.handleBinary(conn, br)
		return
	}
	s.handleJSON(conn, br)
}

// handleJSON serves the JSON-lines protocol: strictly in-order, one
// dispatch at a time. Decoder, encoder, response buffer, and the
// Request are all per-connection, reset per request — the per-op
// allocation cost is the engine call, not the transport.
func (s *Server) handleJSON(conn net.Conn, br *bufio.Reader) {
	dec := json.NewDecoder(br)
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	var req Request
	for {
		req = Request{}
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage: drop the connection
		}
		if !s.beginOp() {
			// Draining: refuse new work; in-flight dispatches on other
			// connections still complete and respond.
			enc.Encode(Response{Err: ErrShuttingDown.Error()})
			bw.Flush()
			return
		}
		start := time.Now()
		resp := s.dispatch(req)
		s.observeOp(req.Op, start)
		if resp.vrows != nil {
			resp.Rows = rowsOut(resp.vrows)
		}
		err := enc.Encode(resp)
		if err == nil {
			err = bw.Flush()
		}
		s.endOp()
		if err != nil {
			return
		}
	}
}

// observeOp records one dispatch's latency under its verb's series
// (unknown verbs land in "other").
func (s *Server) observeOp(op string, start time.Time) {
	if h, ok := s.opHist[op]; ok {
		h.Observe(time.Since(start))
	} else {
		s.opHist["other"].Observe(time.Since(start))
	}
}

// beginOp admits one dispatch into the drain count; it refuses (false)
// once Shutdown has begun.
func (s *Server) beginOp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

// endOp retires one dispatch, releasing Shutdown when the last
// in-flight operation (response included) finishes.
func (s *Server) endOp() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
	s.mu.Unlock()
}

// Shutdown drains the server: it stops accepting connections and new
// requests, waits up to timeout for in-flight dispatches to finish
// writing their responses, then closes every remaining connection.
// The database itself is not closed — callers own that ordering (drain
// first, then quantumdb.DB.Close, so no engine call races teardown).
// Shutdown is idempotent; concurrent calls all wait for the drain.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	var drained chan struct{}
	if s.active > 0 {
		if s.drained == nil {
			s.drained = make(chan struct{})
		}
		drained = s.drained
	}
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	s.mu.Unlock()

	if first {
		for _, l := range ls {
			l.Close()
		}
	}
	var err error
	if drained != nil {
		select {
		case <-drained:
		case <-time.After(timeout):
			err = fmt.Errorf("server: drain timed out after %v", timeout)
		}
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) dispatch(req Request) Response {
	r := s.role.Load()
	if !r.leader() {
		return s.dispatchFollower(r, req)
	}
	// fail wraps leader-side refusals; a demotion (this node lost a
	// fence exchange and is now read-only) rides out as a structured
	// redirect to wherever the write lease went.
	fail := func(err error) Response {
		resp := Response{Err: err.Error()}
		if errors.Is(err, core.ErrDemoted) {
			addr, term := r.db.Engine().LeaderHint()
			resp.Redirect = &Redirect{Addr: addr, Term: term}
			s.redirects.Add(1)
		}
		return resp
	}
	switch req.Op {
	case "ping":
		return Response{OK: true}
	case "lag":
		st := r.db.Stats()
		return Response{OK: true, Seq: r.db.Engine().WALSeq(),
			Applied: uint64(st.ReplicaAckSeq), Lag: uint64(st.ReplicaLag),
			Term: r.db.Engine().Term()}
	case "repl.bootstrap":
		image, seq, err := r.shipper.Bootstrap()
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Image: image, Seq: seq}
	case "repl.pull":
		s.parkPull(r, req)
		res, err := r.shipper.Pull(req.After, req.Term)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Batches: toWireBatches(res.Batches),
			Seq: res.LeaderSeq, Resync: res.Resync, Term: res.LeaderTerm}
	case "repl.fence":
		res, err := r.shipper.Fence(req.Term, req.Addr)
		if err != nil {
			return fail(err)
		}
		resp := Response{OK: true, Granted: res.Granted, Term: res.Term}
		if res.LeaderAddr != "" {
			resp.Redirect = &Redirect{Addr: res.LeaderAddr, Term: res.Term}
		}
		return resp
	case "promote":
		// Already the leader. Answering OK makes scripted failover
		// idempotent: a candidate that lost the race follows the
		// redirect here and learns the term instead of erroring out.
		return Response{OK: true, Term: r.db.Engine().Term(), Seq: r.db.Engine().WALSeq()}
	case "create":
		if req.Table == nil {
			return fail(fmt.Errorf("create requires table"))
		}
		t := req.Table
		if err := r.db.CreateTable(quantumdb.Table{
			Name: t.Name, Columns: t.Columns, Key: t.Key, Indexes: t.Indexes,
		}); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "exec":
		if err := r.db.Exec(req.Facts); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "txn":
		id, err := r.db.Submit(req.Txn)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id, Pending: r.db.Pending()}
	case "batch":
		if len(req.Txns) == 0 {
			return fail(fmt.Errorf("batch requires txns"))
		}
		ids, errs := r.db.SubmitBatch(req.Txns)
		for _, e := range errs {
			// A demoted leader refuses the whole batch with the usual
			// structured redirect — per-item errors are for admission
			// outcomes, not for cutover.
			if e != nil && errors.Is(e, core.ErrDemoted) {
				return fail(e)
			}
		}
		out := Response{OK: true, IDs: ids, Errs: make([]string, len(errs)),
			Pending: r.db.Pending()}
		for i, e := range errs {
			if e != nil {
				out.Errs[i] = e.Error()
			}
		}
		return out
	case "etxn":
		id, err := r.co.Submit(req.Txn, req.Tag, req.Partner)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id, Pending: r.db.Pending()}
	case "sql":
		id, err := r.db.SubmitSQL(req.Txn)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id, Pending: r.db.Pending()}
	case "read":
		rows, err := r.db.Query(req.Query)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, vrows: rows}
	case "snapread":
		// Collapse-free read: evaluated against a one-shot snapshot, so it
		// observes committed state only (pending transactions stay
		// superposed) and never contends with appliers.
		snap := r.db.Snapshot()
		rows, err := snap.Query(req.Query)
		snap.Release()
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, vrows: rows}
	case "preview":
		ids, err := r.db.Preview(req.Query)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, IDs: ids}
	case "ground":
		if err := r.db.Ground(req.ID); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "groundall":
		if err := r.db.GroundAll(); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "pending":
		return Response{OK: true, Pending: r.db.Pending()}
	case "stats":
		st := r.db.Stats()
		if r.fol != nil {
			// Promoted leader: fold in the follower-era counters so the
			// promotion itself stays visible in stats.
			st.Promotions = int(r.fol.Promotions())
			st.BatchesReplayed = r.fol.BatchesReplayed()
		}
		return Response{OK: true, Stats: &st}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// rowsOut converts rows to the wire's quoted-string maps.
func rowsOut(rows []quantumdb.Row) []map[string]string {
	out := make([]map[string]string, len(rows))
	for i, r := range rows {
		m := make(map[string]string, len(r))
		for k, v := range r {
			m[k] = v.Quoted()
		}
		out[i] = m
	}
	return out
}
