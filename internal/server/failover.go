package server

import (
	"errors"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
)

// Server-side failover: the promote verb turns a follower-mode server
// into a leader in place (role swap), repl.pull long-polls so shipping
// is push-shaped, and refused mutations carry a structured Redirect so
// clients cut over to the new leader without operator help.

// maxLongPoll caps how long one repl.pull may park server-side,
// whatever the follower asked for.
const maxLongPoll = 30 * time.Second

// longPollSlice is the park granularity: each wakeup rechecks draining
// so a shutdown never waits out a whole long-poll budget.
const longPollSlice = 250 * time.Millisecond

// parkPull implements push-style shipping over the pull wire: when the
// follower asked to long-poll (WaitMS) and nothing is committed above
// its watermark, park on the WAL's sequence broadcast so batches ship
// the moment they commit instead of on the next poll tick. Parking in
// slices keeps drains prompt.
func (s *Server) parkPull(r *serverRole, req Request) {
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait <= 0 {
		return
	}
	if wait > maxLongPoll {
		wait = maxLongPoll
	}
	deadline := time.Now().Add(wait)
	for {
		if r.db.Engine().WALSeq() > req.After {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		left := time.Until(deadline)
		if left <= 0 {
			return
		}
		if left > longPollSlice {
			left = longPollSlice
		}
		r.db.Engine().WaitForWALSeq(req.After, left)
	}
}

// EnablePromotion arms the promote verb on a follower-mode server: when
// an operator (qdbcli promote) asks, the follower runs Promote with
// this config and the server swaps itself into leader mode in place.
// cfg.Addr should be the address clients and peers reach this server
// at — it is what the deposed leader's redirects will advertise.
func (s *Server) EnablePromotion(cfg replica.PromoteConfig) {
	s.mu.Lock()
	s.promoteCfg = &cfg
	s.mu.Unlock()
}

// promoteFollower handles the promote verb on a follower: fence, drain,
// core.PromoteReplica, then swap the server role so the very next
// request admits writes at the new term. The sealed Follower rides
// along in the new role for stats continuity (promotions, cache
// counters); its Run loop has exited.
func (s *Server) promoteFollower(r *serverRole, req Request) Response {
	s.mu.Lock()
	cfgp := s.promoteCfg
	s.mu.Unlock()
	if cfgp == nil {
		return Response{Err: "server: promotion not enabled on this follower (start it with a promotion WAL path)"}
	}
	cfg := *cfgp
	if req.Force {
		cfg.Force = true
	}
	q, err := r.fol.Promote(cfg)
	if err != nil {
		resp := Response{Err: err.Error()}
		if errors.Is(err, replica.ErrLostElection) {
			if addr := r.fol.LeaderAddr(); addr != "" {
				resp.Redirect = &Redirect{Addr: addr, Term: r.fol.Term()}
				s.redirects.Add(1)
			}
		}
		return resp
	}
	db := quantumdb.FromEngine(q)
	s.role.Store(&serverRole{
		db: db, co: db.NewCoordinator(),
		shipper: &replica.Shipper{DB: q, MaxBatches: shipChunk},
		fol:     r.fol,
	})
	return Response{OK: true, Term: q.Term(), Seq: q.WALSeq()}
}
