package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	quantumdb "repro"
	"repro/internal/value"
)

func startServer(t *testing.T) (*Client, *quantumdb.DB) {
	t.Helper()
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := New(db)
	go srv.Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, db
}

func seatSchema(t *testing.T, c *Client) {
	t.Helper()
	tables := []TableSpec{
		{Name: "Available", Columns: []string{"fno", "sno"}},
		{Name: "Bookings", Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2}},
		{Name: "Adjacent", Columns: []string{"fno", "s1", "s2"}, Indexes: [][]int{{0, 1}, {0, 2}}},
	}
	for _, tb := range tables {
		if err := c.CreateTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Exec("+Available(1, '1A'), +Available(1, '1B'), +Available(1, '1C')"); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("+Adjacent(1, '1A', '1B'), +Adjacent(1, '1B', '1A'), +Adjacent(1, '1B', '1C'), +Adjacent(1, '1C', '1B')"); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndToEnd(t *testing.T) {
	c, db := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	seatSchema(t, c)

	id, err := c.Submit("-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s)")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("no id")
	}
	if n, _ := c.Pending(); n != 1 {
		t.Fatalf("pending = %d", n)
	}
	// Preview first, then collapse by reading.
	ids, err := c.Preview("Bookings('Mickey', 1, s)")
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("preview = %v err=%v", ids, err)
	}
	rows, err := c.Query("Bookings('Mickey', 1, s)")
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v err=%v", rows, err)
	}
	seat := rows[0]["s"]
	if seat.Kind() != value.String || !strings.HasPrefix(seat.Str(), "1") {
		t.Fatalf("seat = %v", seat)
	}
	if db.Pending() != 0 {
		t.Fatal("server-side collapse did not happen")
	}
}

func TestServerEntangledPair(t *testing.T) {
	c, _ := startServer(t)
	seatSchema(t, c)
	m := "-Available(1, s), +Bookings('Mickey', 1, s) :-1 Available(1, s), ?Bookings('Goofy', 1, m), ?Adjacent(1, s, m)"
	g := "-Available(1, s), +Bookings('Goofy', 1, s) :-1 Available(1, s), ?Bookings('Mickey', 1, m), ?Adjacent(1, s, m)"
	if _, err := c.SubmitEntangled(m, "Mickey", "Goofy"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitEntangled(g, "Goofy", "Mickey"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query("Bookings('Mickey', 1, a), Bookings('Goofy', 1, b), Adjacent(1, a, b)")
	if err != nil || len(rows) == 0 {
		t.Fatalf("pair not adjacent: %v err=%v", rows, err)
	}
}

func TestServerSQL(t *testing.T) {
	c, _ := startServer(t)
	seatSchema(t, c)
	id, err := c.SubmitSQL(`SELECT A.fno AS @f, A.sno AS @s FROM Available A CHOOSE 1
		FOLLOWED BY (DELETE (@f, @s) FROM Available; INSERT ('Minnie', @f, @s) INTO Bookings)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ground(id); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query("Bookings('Minnie', 1, s)")
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v err=%v", rows, err)
	}
}

func TestServerErrors(t *testing.T) {
	c, _ := startServer(t)
	seatSchema(t, c)
	if _, err := c.Submit("garbage"); err == nil {
		t.Error("bad txn accepted")
	}
	if err := c.Exec("-Available(1, 'nope')"); err == nil {
		t.Error("bad exec accepted")
	}
	if err := c.Ground(999); err == nil {
		t.Error("ground of unknown id accepted")
	}
	if err := c.CreateTable(TableSpec{Name: "Available", Columns: []string{"x"}}); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := c.Query("((("); err == nil {
		t.Error("bad query accepted")
	}
	// Connection still usable after errors.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	c0, db := startServer(t)
	seatSchema(t, c0)
	// Enough capacity for all clients.
	if err := c0.Exec("+Available(1, '2A'), +Available(1, '2B'), +Available(1, '2C')"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := string(rune('a' + i))
			_, err := c0.Submit("-Available(1, s), +Bookings('" + user + "', 1, s) :-1 Available(1, s)")
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c0.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if n := db.Pending(); n != 0 {
		t.Fatalf("pending = %d", n)
	}
	rows, err := c0.Query("Bookings(n, 1, s)")
	if err != nil || len(rows) != 6 {
		t.Fatalf("bookings = %d err=%v", len(rows), err)
	}
}

// startServerAddr is startServer exposing the listen address so tests can
// open several independent connections.
func startServerAddr(t *testing.T) (string, *quantumdb.DB) {
	t.Helper()
	db, err := quantumdb.Open(quantumdb.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go New(db).Serve(l)
	return l.Addr().String(), db
}

// TestServerParallelConnections drives the server from many independent
// TCP connections at once — mixed submits, entangled submits, reads, and
// writes across several flights (= partitions) — and checks the final
// state. Requests from different connections dispatch concurrently on the
// sharded engine; run with -race.
func TestServerParallelConnections(t *testing.T) {
	addr, db := startServerAddr(t)
	c0, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c0.Close() })
	seatSchema(t, c0)
	// Three more flights so clients spread over independent partitions.
	for f := 2; f <= 4; f++ {
		facts := fmt.Sprintf("+Available(%d, '1A'), +Available(%d, '1B'), +Available(%d, '1C')", f, f, f)
		if err := c0.Exec(facts); err != nil {
			t.Fatal(err)
		}
		adj := fmt.Sprintf("+Adjacent(%d, '1A', '1B'), +Adjacent(%d, '1B', '1A'), +Adjacent(%d, '1B', '1C'), +Adjacent(%d, '1C', '1B')", f, f, f, f)
		if err := c0.Exec(adj); err != nil {
			t.Fatal(err)
		}
	}

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients*4)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			f := i%4 + 1
			user := fmt.Sprintf("p%d", i)
			txn := fmt.Sprintf("-Available(%d, s), +Bookings('%s', %d, s) :-1 Available(%d, s)", f, user, f, f)
			if i%2 == 0 {
				if _, err := c.Submit(txn); err != nil {
					errCh <- err
					return
				}
			} else {
				partner := fmt.Sprintf("p%d", i-1)
				etxn := fmt.Sprintf(
					"-Available(%d, s), +Bookings('%s', %d, s) :-1 Available(%d, s), ?Bookings('%s', %d, m), ?Adjacent(%d, s, m)",
					f, user, f, f, partner, f, f)
				if _, err := c.SubmitEntangled(etxn, user, partner); err != nil {
					errCh <- err
					return
				}
			}
			// Interleave reads (collapsing) and previews on the same flight.
			if _, err := c.Query(fmt.Sprintf("Bookings('%s', %d, s)", user, f)); err != nil {
				errCh <- err
				return
			}
			if _, err := c.Preview(fmt.Sprintf("Bookings(n, %d, s)", f)); err != nil {
				errCh <- err
				return
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c0.GroundAll(); err != nil {
		t.Fatal(err)
	}
	if n := db.Pending(); n != 0 {
		t.Fatalf("pending = %d", n)
	}
	rows, err := c0.Query("Bookings(n, f, s)")
	if err != nil || len(rows) != clients {
		t.Fatalf("bookings = %d err=%v, want %d", len(rows), err, clients)
	}
}
