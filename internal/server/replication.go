package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	quantumdb "repro"
	"repro/internal/logic"
	"repro/internal/replica"
	"repro/internal/txn"
	"repro/internal/wal"
)

// This file is the network leg of WAL log shipping: the leader serves
// repl.bootstrap / repl.pull over the ordinary JSON-lines protocol, a
// follower-mode server answers reads from its replayed store, and
// ReplicaClient adapts the wire back into a replica.Transport so the
// follower loop is transport-agnostic (the replication harness drives
// the same loop over an in-process Pipe).

// ErrReadOnlyFollower is the refusal a follower sends for any mutating
// verb: followers have no admission path — every change must flow
// through the leader's WAL.
var ErrReadOnlyFollower = fmt.Errorf("server: read-only follower; submit mutations to the leader")

// dispatchFollower answers the read-only verb subset from the replica,
// plus the failover verbs: promote (when armed) and repl.fence (a new
// leader announcing itself — the follower retargets its pull loop).
func (s *Server) dispatchFollower(r *serverRole, req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	switch req.Op {
	case "ping":
		return Response{OK: true}
	case "lag":
		return Response{OK: true, Seq: r.fol.LeaderSeq(),
			Applied: r.fol.AppliedSeq(), Lag: r.fol.Lag(),
			Term: r.fol.Term()}
	case "snapread":
		// The follower's only read path is by construction collapse-free:
		// there is no pending superposition here to observe, only the
		// committed state replayed from the leader's log.
		st := r.fol.State()
		if st == nil {
			return fail(fmt.Errorf("follower not bootstrapped yet"))
		}
		atoms, err := txn.ParseQuery(req.Query)
		if err != nil {
			return fail(err)
		}
		sols, err := st.QuerySnapshot(atoms)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, vrows: substRows(atoms, sols)}
	case "pending":
		if st := r.fol.State(); st != nil {
			return Response{OK: true, Pending: st.PendingCount()}
		}
		return Response{OK: true}
	case "stats":
		st := r.fol.Stats()
		return Response{OK: true, Stats: &st}
	case "promote":
		return s.promoteFollower(r, req)
	case "repl.fence":
		// A promoted peer announcing itself at a new term: cede and
		// retarget the pull loop at the winner. A stale announcement
		// (term below what we already observe) is refused with the
		// current term and leader hint, mirroring the leader's refusal.
		if req.Term >= r.fol.Term() && req.Addr != "" {
			r.fol.SetLeaderAddr(req.Addr)
			r.fol.SetTransport(&ReplicaClient{Addr: req.Addr})
			return Response{OK: true, Granted: true, Term: req.Term}
		}
		resp := Response{OK: true, Granted: false, Term: r.fol.Term()}
		if addr := r.fol.LeaderAddr(); addr != "" {
			resp.Redirect = &Redirect{Addr: addr, Term: r.fol.Term()}
		}
		return resp
	default:
		// Mutating (or unknown) verb on a follower: refuse, and when the
		// leader is known, say where writes go — the client's cutover
		// signal.
		resp := Response{Err: ErrReadOnlyFollower.Error()}
		if addr := r.fol.LeaderAddr(); addr != "" {
			resp.Redirect = &Redirect{Addr: addr, Term: r.fol.Term()}
			s.redirects.Add(1)
		}
		return resp
	}
}

// substRows materializes solver substitutions into typed rows (the
// follower-side twin of the facade's rowsFromSols); the transport layer
// decides the wire form — binary frames ship the values directly, the
// JSON path quotes them via rowsOut. Keeping the conversion late is
// what makes leader and follower snapread responses byte-exact on
// either protocol.
func substRows(atoms []logic.Atom, sols []logic.Subst) []quantumdb.Row {
	var vars []string
	for _, a := range atoms {
		vars = a.Vars(vars)
	}
	out := make([]quantumdb.Row, 0, len(sols))
	for _, sol := range sols {
		m := make(quantumdb.Row, len(vars))
		for _, v := range vars {
			if t := sol.Walk(logic.Var(v)); !t.IsVar() {
				m[v] = t.Value()
			}
		}
		out = append(out, m)
	}
	return out
}

func toWireBatches(batches []wal.Batch) []WireBatch {
	out := make([]WireBatch, len(batches))
	for i, b := range batches {
		recs := make([]WireRecord, len(b.Records))
		for j, r := range b.Records {
			recs[j] = WireRecord{Type: r.Type, Payload: r.Payload}
		}
		out[i] = WireBatch{Seq: b.Seq, Term: b.Term, Records: recs}
	}
	return out
}

func fromWireBatches(batches []WireBatch) []wal.Batch {
	out := make([]wal.Batch, len(batches))
	for i, b := range batches {
		recs := make([]wal.Record, len(b.Records))
		for j, r := range b.Records {
			recs[j] = wal.Record{Type: r.Type, Payload: r.Payload}
		}
		out[i] = wal.Batch{Seq: b.Seq, Term: b.Term, Records: recs}
	}
	return out
}

// ReplicaClient is a replica.Transport that speaks the JSON-lines
// protocol to a leader qdbd. It dials per call: bootstraps are rare,
// pulls ride a polling cadence, and a fresh connection per request
// makes leader restarts and flaky networks a retry instead of a stuck
// stream (the follower loop already retries transient errors).
type ReplicaClient struct {
	Addr string
	// Timeout bounds one whole call, dial to decoded response
	// (default 30s; stretched to cover Wait when long-polling).
	Timeout time.Duration
	// Wait, when positive, asks the leader to long-poll pulls: the
	// server parks up to Wait for new batches before answering, so
	// shipping is push-shaped and follower lag drops to a round trip.
	Wait time.Duration
}

var _ replica.Transport = (*ReplicaClient)(nil)

func (c *ReplicaClient) roundTrip(req Request) (Response, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if c.Wait > 0 && timeout < c.Wait+10*time.Second {
		timeout = c.Wait + 10*time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("server: dial leader %s: %w", c.Addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, fmt.Errorf("server: send %s: %w", req.Op, err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("server: read %s reply: %w", req.Op, err)
	}
	if !resp.OK {
		return Response{}, fmt.Errorf("server: leader refused %s: %s", req.Op, resp.Err)
	}
	return resp, nil
}

// Bootstrap fetches a checkpoint image from the leader.
func (c *ReplicaClient) Bootstrap() ([]byte, uint64, error) {
	resp, err := c.roundTrip(Request{Op: "repl.bootstrap"})
	if err != nil {
		return nil, 0, err
	}
	return resp.Image, resp.Seq, nil
}

// Pull fetches the WAL suffix above after, carrying the follower's
// observed term (the leader demotes itself on seeing a higher one).
func (c *ReplicaClient) Pull(after, term uint64) (replica.PullResult, error) {
	req := Request{Op: "repl.pull", After: after, Term: term}
	if c.Wait > 0 {
		req.WaitMS = c.Wait.Milliseconds()
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return replica.PullResult{}, err
	}
	return replica.PullResult{
		Batches:    fromWireBatches(resp.Batches),
		LeaderSeq:  resp.Seq,
		LeaderTerm: resp.Term,
		Resync:     resp.Resync,
	}, nil
}

// Fence proposes that the caller lead at term, over the wire. A refusal
// (Granted false) is a successful exchange, not an error; the winner's
// address rides back in the response redirect.
func (c *ReplicaClient) Fence(term uint64, addr string) (replica.FenceResult, error) {
	resp, err := c.roundTrip(Request{Op: "repl.fence", Term: term, Addr: addr})
	if err != nil {
		return replica.FenceResult{}, err
	}
	res := replica.FenceResult{Granted: resp.Granted, Term: resp.Term}
	if resp.Redirect != nil {
		res.LeaderAddr = resp.Redirect.Addr
	}
	return res, nil
}
