// Package quantumdb is a Go implementation of Quantum Databases (Roy,
// Kot, Koch — CIDR 2013): a database abstraction that defers the choices
// made by transactions until an application or user forces them by
// observation.
//
// A resource transaction ("give Mickey any available seat on a flight to
// LA, preferably next to Goofy") commits without binding concrete values.
// The database keeps the set of possible worlds — intensionally, as an
// extensional store plus composed constraint bodies over the pending
// transactions — and guarantees that a consistent grounding always
// exists, so a committed transaction never rolls back. Reading data that
// a pending transaction may write collapses the superposition: values
// are fixed, updates execute, and reads are thereafter repeatable.
//
// Quick start:
//
//	db, _ := quantumdb.Open(quantumdb.Options{})
//	db.MustCreateTable(quantumdb.Table{Name: "Available", Columns: []string{"fno", "sno"}})
//	db.MustCreateTable(quantumdb.Table{Name: "Bookings",
//	    Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2}})
//	db.MustExec("+Available(123, '5A')")
//	id, _ := db.Submit("-Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s)")
//	// ... committed, but no seat chosen yet ...
//	rows, _ := db.Query("Bookings('Mickey', f, s)") // observation collapses
//	fmt.Println(rows[0]["s"], id)
//
// The package is a facade over the engine packages (internal/core,
// internal/relstore, internal/formula, internal/txn); everything is
// reachable through it, including entangled coordination
// (NewCoordinator) and durability/recovery (Options.WALPath, Recover).
//
// # Performance
//
// Grounding dominates the cost profile: every Ground/Query collapse runs
// the chain solver, which runs the conjunctive-query evaluator once per
// candidate grounding. The engine therefore follows a strict allocation
// discipline on that path:
//
//   - Queries are compiled before evaluation (relstore.Query.Compile):
//     variables resolve to slots of a logic.Env — a flat binding array
//     with an undo trail — so backtracking over candidate tuples binds
//     and unbinds slots instead of cloning a map per tuple. A Subst is
//     materialized only when a solution is emitted (Env.Snapshot).
//   - The chain solver compiles each transaction body once per solve and
//     recycles delta overlays through a free list; overlay delta maps are
//     allocated lazily, so rejected candidate groundings cost no maps.
//   - Store and overlay scans build index and tombstone keys in on-stack
//     buffers, and planner cardinality probes (IndexCount) do not
//     allocate at all.
//   - Solve results survive across operations: compiled bodies live in a
//     database-level prepared-query cache keyed by stable transaction
//     views, each partition's cached solution replays at grounding time
//     (an unchanged partition collapses with zero solver work), and
//     rejected admissions and writes are re-rejected by cache probe.
//     All three caches are invalidated by store epoch counters — a
//     fingerprint mismatch proves the relevant relations changed and
//     forces a fresh solve, so a stale grounding can never be served.
//     Stats reports SolutionReplays, SolutionStale, NegativeCacheHits
//     and PrepCacheHits/Misses; Options.DisableCache turns the layer
//     off for ablations.
//
// Two join planners are available (relstore.PlanDynamic, the default
// greedy re-planning mode, and relstore.PlanStatic, a naive fixed order)
// via Options.Planner; PlanStatic reproduces the paper's bad-query-plan
// anomalies and is expected to be slow on purpose.
//
// Allocation regressions are guarded by testing.AllocsPerRun tests in
// internal/relstore and by the benchmark suite; run
//
//	go test -bench . -benchmem
//
// and watch allocs/op on BenchmarkFig7, the grounding-heavy workload
// (the trail-based engine landed at less than half the allocs/op of the
// map-based evaluator with a ~20% ns/op improvement).
//
// # Concurrency
//
// A DB is safe for concurrent use. The engine is sharded by partition
// (internal/sched): partitions — groups of pending transactions whose
// atoms can unify — are mutually independent by construction (§4), so
// each partition has its own lock and every operation acquires only the
// partitions it touches. What runs in parallel:
//
//   - Submissions admit OPTIMISTICALLY: the admission chain solve — the
//     hot path's dominant cost — runs outside the admission lock,
//     against a versioned snapshot of the partitions the transaction
//     overlaps; a short critical section then validates the snapshot
//     (same partitions at the same versions, relevant store epochs
//     unmoved or provably moved only by non-overlapping groundings) and
//     installs the outcome. Submits touching disjoint partitions
//     therefore admit concurrently, end to end.
//   - GroundAll drains independent partitions concurrently on a bounded
//     worker pool; so do the read-collapse phase of Query (when a read
//     forces several partitions to ground) and the validation solves of
//     a blind write that touches several partitions. Speculative
//     admission solves draw from the same pool, so total solve
//     concurrency stays bounded machine-wide.
//
// What serializes:
//
//   - The validate-and-install step of every admission, and blind
//     writes, hold a single admission lock — they can create or merge
//     partitions — but only for bookkeeping, never across a solve
//     (unless Options.SerialAdmission restores the classic discipline).
//     When validation fails (the partition set or the relevant store
//     state advanced mid-speculation) the admission retries, at most
//     twice; after that it falls back to one serial admission under the
//     lock, so contended partitions degrade to the pre-optimistic
//     behaviour instead of livelocking. Stats reports the funnel:
//     OptimisticAdmissions, AdmissionConflicts, AdmissionRetries,
//     SerialFallbacks (conflicts = retries + fallbacks). The k-bound
//     eviction a Submit triggers runs after the admission lock is
//     released, holding only the target partition.
//   - Operations on the SAME partition serialize on its lock; store
//     mutations are short exclusive sections against a read gate. Reads
//     do NOT hold that gate while evaluating: Query pins an immutable
//     copy-on-write snapshot of the store under a brief gate
//     acquisition and evaluates against it gate-free, so a long
//     analytical read never stalls appliers (and vice versa) while its
//     results stay cut at a single committed state.
//
// For reads that should never collapse pending transactions — and
// never wait on anything — DB.Snapshot returns an epoch-stamped frozen
// view; Snapshot.Query / DB.QueryAt evaluate against it lock-free and
// repeatably until it is Released. Stats reports SnapshotReads and the
// SnapshotsLive gauge.
//
// Options.Workers picks the pool width: 0 (default) uses GOMAXPROCS,
// 1 makes every multi-partition operation run inline (serial), larger
// values bound parallel grounding explicitly. cmd/qdbd exposes it as
// -workers. With Workers > 1 the choice among equally-valid groundings
// can depend on scheduling; every outcome is a consistent world, and
// per-partition results remain deterministic for serial runs (store
// iteration is insertion-ordered, never Go map order).
//
// Stats reports the scheduler's behaviour: ParallelSolves counts
// partition tasks executed on the pool (including speculative admission
// solves), LockWaits counts stale lock acquisitions and skips,
// PartitionMerges counts admission-time merges. cmd/qdbd exposes the
// serial-admission ablation as -serial-admission.
//
// # Durability
//
// Options.WALPath turns on write-ahead logging: every commit unit — an
// admitted transaction's pending record, a grounding's facts plus
// tombstone, a blind write — is appended to the log as one framed,
// sequence-stamped batch BEFORE its effects reach the store, so a crash
// between log and apply is repaired by replay rather than diverging.
// Two knobs shape the log:
//
//   - Options.SyncWAL acknowledges a batch only after an fsync covering
//     it. Concurrent appenders to the same segment GROUP COMMIT (one
//     leader fsyncs for everyone buffered so far); without it batches
//     are flushed to the OS but a machine crash may lose the unsynced
//     tail.
//   - Options.WALSegments shards the log into N partition-affine
//     segment files (<WALPath>.0 …). A partition's batches stay ordered
//     within one file while partitions on different segments share no
//     log mutex and no fsync stream, so durable grounding of disjoint
//     partitions scales with the segment count instead of serializing
//     on one log. Recovery merges every segment by sequence number into
//     a single ordered replay stream, tolerates a torn tail per
//     segment, and redoes facts idempotently.
//
// Recover rebuilds a database from the log; Checkpoint (on the engine,
// via Engine()) plus core.RecoverCheckpoint bound replay length. The
// checkpoint is FUZZY: it quiesces the engine only to pin a store
// snapshot and a WAL sequence stamp (a pause independent of data size,
// reported as Stats.CheckpointPauseNs), then serializes and truncates
// the log with transactions admitting, grounding, and writing
// concurrently; recovery replays only batches above the stamp. cmd/qdbd
// exposes the knobs as -wal, -sync-wal, and -wal-segments.
package quantumdb

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relstore"
	"repro/internal/telemetry"
	"repro/internal/txn"
	"repro/internal/value"
)

// Options configures a quantum database; see the field docs on the
// underlying type for the k-bound, serializability mode, caching,
// partitioning, durability, and collapse-choice heuristics.
type Options = core.Options

// Serializability modes for out-of-order grounding (§3.2.3 of the
// paper).
const (
	// Semantic grounds only the observed transaction when the reordered
	// chain stays satisfiable (the paper's recommended mode).
	Semantic = core.Semantic
	// Strict preserves arrival order: observing a transaction grounds
	// every earlier one in its partition first.
	Strict = core.Strict
)

// Stats re-exports the engine counters.
type Stats = core.Stats

// Table describes one relation: column names, optional key column
// positions (nil means the whole tuple is the key), and optional
// composite secondary indexes.
type Table struct {
	Name    string
	Columns []string
	Key     []int
	Indexes [][]int
}

// Row maps variable names of a query to the values a solution assigned
// them.
type Row map[string]Value

// Value is a scalar database value: an int64 or a string.
type Value = value.Value

// Int builds an integer Value.
func Int(i int64) Value { return value.NewInt(i) }

// Str builds a string Value.
func Str(s string) Value { return value.NewString(s) }

// DB is a quantum database over an embedded relational store.
type DB struct {
	q     *core.QDB
	store *relstore.DB
}

// Open creates an empty quantum database.
func Open(opt Options) (*DB, error) {
	store := relstore.NewDB()
	q, err := core.New(store, opt)
	if err != nil {
		return nil, err
	}
	return &DB{q: q, store: store}, nil
}

// Recover rebuilds a quantum database from the write-ahead log named in
// opt.WALPath. setup must re-create the SCHEMA (CreateTable calls) and
// any rows that were inserted outside the quantum database; every write
// made through DB.Exec and every grounded transaction is replayed from
// the log and must not be re-seeded. Still-pending resource transactions
// are re-admitted, restoring the quantum state.
func Recover(opt Options, setup func(*DB) error) (*DB, error) {
	store := relstore.NewDB()
	tmp := &DB{store: store}
	if setup != nil {
		if err := setup(tmp); err != nil {
			return nil, err
		}
	}
	q, err := core.Recover(store, opt)
	if err != nil {
		return nil, err
	}
	return &DB{q: q, store: store}, nil
}

// FromEngine wraps an already-constructed engine in the facade. This is
// the promotion path: replica.Follower.Promote returns a live
// *core.QDB built over the replica's replayed store, and FromEngine
// turns it into the DB a server can host. Ownership transfers — Close
// on the returned DB closes the engine.
func FromEngine(q *core.QDB) *DB {
	return &DB{q: q, store: q.Store()}
}

// Close releases the WAL, if any.
func (db *DB) Close() error { return db.q.Close() }

// CreateTable registers a relation.
func (db *DB) CreateTable(t Table) error {
	return db.store.CreateTable(relstore.Schema{
		Name: t.Name, Columns: t.Columns, Key: t.Key, Indexes: t.Indexes,
	})
}

// MustCreateTable is CreateTable panicking on error, for setup code.
func (db *DB) MustCreateTable(t Table) {
	if err := db.CreateTable(t); err != nil {
		panic(err)
	}
}

// Submit admits a resource transaction written in the paper's
// Datalog-like notation:
//
//	-Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s), ?Bookings('Goofy', f, m), ?Adjacent(f, s, m)
//
// '?' (or OPT) marks OPTIONAL body atoms. On success the transaction is
// committed — a suitable resource is guaranteed — but no values are
// bound until observation. The returned ID can be passed to Ground.
func (db *DB) Submit(src string) (int64, error) {
	t, err := txn.Parse(src)
	if err != nil {
		return 0, err
	}
	return db.q.Submit(t)
}

// SubmitBatch admits a batch of resource transactions in one amortized
// admission cycle (one overlap snapshot, one speculative solve pass,
// one validate-and-install critical section, one WAL group commit —
// see core.SubmitBatch). Results align with srcs: ids[i] is the
// assigned ID when errs[i] is nil. Members are decided independently —
// a parse error or rejection in one slot never poisons the others —
// with the same outcomes sequential Submits in slice order would
// produce.
func (db *DB) SubmitBatch(srcs []string) ([]int64, []error) {
	ids := make([]int64, len(srcs))
	errs := make([]error, len(srcs))
	ts := make([]*txn.T, 0, len(srcs))
	idx := make([]int, 0, len(srcs))
	for i, src := range srcs {
		t, err := txn.Parse(src)
		if err != nil {
			errs[i] = err
			continue
		}
		ts = append(ts, t)
		idx = append(idx, i)
	}
	bids, berrs := db.q.SubmitBatch(ts)
	for j, i := range idx {
		ids[i], errs[i] = bids[j], berrs[j]
	}
	return ids, errs
}

// SubmitSQL is Submit for the paper's SQL-flavoured syntax (Figure 1):
//
//	SELECT A.fno AS @f, A.sno AS @s
//	FROM Available A, OPTIONAL Adjacent J
//	WHERE ...
//	CHOOSE 1
//	FOLLOWED BY (DELETE (@f, @s) FROM Available; INSERT ('Mickey', @f, @s) INTO Bookings)
//
// The statement is compiled to the Datalog-like core form against the
// current schema.
func (db *DB) SubmitSQL(src string) (int64, error) {
	t, err := txn.ParseSQL(src, db.schemaLookup)
	if err != nil {
		return 0, err
	}
	return db.q.Submit(t)
}

func (db *DB) schemaLookup(rel string) ([]string, bool) {
	sch, ok := db.store.SchemaOf(rel)
	if !ok {
		return nil, false
	}
	return sch.Columns, true
}

// SubmitTagged is Submit for entangled resource transactions: tag names
// this user; partner names the coordination partner whose transaction
// will arrive separately (§5.1). Use a Coordinator to ground pairs on
// partner arrival.
func (db *DB) SubmitTagged(src, tag, partner string) (int64, error) {
	t, err := txn.Parse(src)
	if err != nil {
		return 0, err
	}
	t.Tag = tag
	t.PartnerTag = partner
	return db.q.Submit(t)
}

// Query evaluates a conjunctive read query, e.g.
//
//	Bookings('Mickey', f, s)
//
// Pending transactions whose updates could affect the result are
// grounded first (observation collapses the quantum state); the returned
// rows bind the query's variables and are repeatable.
func (db *DB) Query(src string) ([]Row, error) {
	atoms, err := txn.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	sols, err := db.q.Read(atoms)
	if err != nil {
		return nil, err
	}
	return rowsFromSols(atoms, sols), nil
}

// rowsFromSols materializes solver substitutions into named rows.
func rowsFromSols(atoms []logic.Atom, sols []logic.Subst) []Row {
	var vars []string
	for _, a := range atoms {
		vars = a.Vars(vars)
	}
	rows := make([]Row, 0, len(sols))
	for _, s := range sols {
		row := make(Row, len(vars))
		for _, v := range vars {
			if t := s.Walk(logic.Var(v)); !t.IsVar() {
				row[v] = t.Value()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Snapshot is an immutable, epoch-stamped view of the committed store —
// the collapse-free read primitive. Queries against a snapshot never
// force pending transactions to ground (no observation, no collapse),
// never block on store writers, and never block them: the view is a set
// of copy-on-write table versions pinned at a single committed state,
// so arbitrarily slow analytical reads run while admissions, groundings
// and writes proceed at full speed. The trade-off is visibility:
// committed-but-unground transactions are simply absent from a
// snapshot's results (use Query to observe them, collapsing the state).
//
// Release the snapshot when done; it stays readable afterwards, but
// holding it pins the store versions it references and makes writers
// pay a one-time copy per mutated table.
type Snapshot struct {
	db *DB
	s  *core.Snapshot
}

// Snapshot pins the current committed state. O(tables), never O(rows).
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{db: db, s: db.q.Snapshot()}
}

// Release unpins the snapshot. Idempotent; safe for concurrent use.
func (s *Snapshot) Release() { s.s.Release() }

// Epoch returns the store epoch the snapshot was cut at; equal epochs
// witness identical content.
func (s *Snapshot) Epoch() uint64 { return s.s.Epoch() }

// Query evaluates a conjunctive read query against the snapshot's
// frozen state; shorthand for DB.QueryAt.
func (s *Snapshot) Query(src string) ([]Row, error) { return s.db.QueryAt(s, src) }

// QueryAt evaluates a conjunctive read query (Query syntax) against a
// snapshot: entirely gate-free, collapse-free, and repeatable — the
// same snapshot always returns the same rows.
func (db *DB) QueryAt(s *Snapshot, src string) ([]Row, error) {
	atoms, err := txn.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	sols, err := db.q.QueryAt(s.s, atoms)
	if err != nil {
		return nil, err
	}
	return rowsFromSols(atoms, sols), nil
}

// Exec applies non-resource blind writes, given as comma-separated
// signed ground atoms:
//
//	+Available(123, '9Z'), -Available(123, '5A')
//
// Writes that would leave some committed resource transaction without
// any possible grounding are rejected with core.ErrWriteRejected.
func (db *DB) Exec(src string) error {
	inserts, deletes, err := parseFacts(src)
	if err != nil {
		return err
	}
	if db.q == nil {
		// Inside a Recover setup callback: seed the initial store
		// directly (there is no quantum state yet).
		return db.store.Apply(inserts, deletes)
	}
	return db.q.Write(inserts, deletes)
}

// MustExec is Exec panicking on error, for setup code.
func (db *DB) MustExec(src string) {
	if err := db.Exec(src); err != nil {
		panic(err)
	}
}

// Preview reports which pending transactions the given read query WOULD
// collapse, without collapsing anything (§3.2.2's "consequences of a
// read" feedback). Broad queries collapse more — prefer narrow ones.
func (db *DB) Preview(query string) ([]int64, error) {
	atoms, err := txn.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return db.q.PreviewRead(atoms), nil
}

// Ground forces value assignment for one committed transaction,
// executing its writes.
func (db *DB) Ground(id int64) error { return db.q.Ground(id) }

// GroundAll collapses every pending transaction; the database is fully
// extensional afterwards.
func (db *DB) GroundAll() error { return db.q.GroundAll() }

// Pending returns the number of committed-but-unground transactions.
func (db *DB) Pending() int { return db.q.PendingCount() }

// Stats returns engine counters.
func (db *DB) Stats() Stats { return db.q.Stats() }

// Metrics returns the engine's telemetry registry: every Stats counter
// as a Prometheus-style series plus per-operation latency histograms
// with stage breakdowns. Serve it over HTTP with Registry.Handler (the
// -metrics-addr listener on qdbd) or render it directly.
func (db *DB) Metrics() *telemetry.Registry { return db.q.Metrics() }

// SlowOps returns the engine's slow-op ring buffer; disabled until a
// threshold is set (Options.SlowOpThreshold or SetSlowOpThreshold).
func (db *DB) SlowOps() *telemetry.SlowLog { return db.q.SlowOps() }

// SetSlowOpThreshold arms (d > 0) or disarms (d <= 0) slow-op capture
// at runtime.
func (db *DB) SetSlowOpThreshold(d time.Duration) { db.q.SetSlowOpThreshold(d) }

// Engine exposes the underlying quantum engine for advanced use
// (GroundPair, partition inspection).
func (db *DB) Engine() *core.QDB { return db.q }

// Coordinator executes entangled resource transactions: it grounds a
// pair together as soon as both partners are in the system.
type Coordinator struct{ c *core.Coordinator }

// NewCoordinator wraps the database for entangled submission.
func (db *DB) NewCoordinator() *Coordinator {
	return &Coordinator{c: core.NewCoordinator(db.q)}
}

// SetEager enables coordinated collapse on arrival when the partner was
// already executed (an extension over the paper; see the ablation
// benchmarks).
func (co *Coordinator) SetEager(on bool) { co.c.EagerCoordination = on }

// Submit admits an entangled resource transaction; when its partner is
// already pending, the pair is grounded together, coordinating if at all
// possible.
func (co *Coordinator) Submit(src, tag, partner string) (int64, error) {
	t, err := txn.Parse(src)
	if err != nil {
		return 0, err
	}
	t.Tag = tag
	t.PartnerTag = partner
	return co.c.Submit(t)
}

// CoordinatedPairs reports how many pairs were grounded together.
func (co *Coordinator) CoordinatedPairs() int { return co.c.CoordinatedPairs() }

// parseFacts reads comma-separated signed ground atoms.
func parseFacts(src string) (inserts, deletes []relstore.GroundFact, err error) {
	rest := strings.TrimSpace(src)
	if rest == "" {
		return nil, nil, fmt.Errorf("quantumdb: empty write")
	}
	// Reuse the transaction parser by wrapping the ops into a dummy txn:
	// "<ops> :-1 True(0)" would need a True relation; parse manually via
	// ParseQuery on the atom part after stripping signs instead.
	parts := splitTopLevel(rest)
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, nil, fmt.Errorf("quantumdb: empty atom in write %q", src)
		}
		var insert bool
		switch p[0] {
		case '+':
			insert = true
		case '-':
			insert = false
		default:
			return nil, nil, fmt.Errorf("quantumdb: write atom %q must start with + or -", p)
		}
		atoms, err := txn.ParseQuery(p[1:])
		if err != nil || len(atoms) != 1 {
			return nil, nil, fmt.Errorf("quantumdb: bad write atom %q", p)
		}
		a := atoms[0]
		if !a.IsGround() {
			return nil, nil, fmt.Errorf("quantumdb: write atom %q contains variables", p)
		}
		f := relstore.GroundFact{Rel: a.Rel, Tuple: a.Tuple()}
		if insert {
			inserts = append(inserts, f)
		} else {
			deletes = append(deletes, f)
		}
	}
	return inserts, deletes, nil
}

// splitTopLevel splits on commas that are outside parentheses and
// quotes.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inStr = false
			}
		case c == '\'':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}
