// Quickstart: the core quantum-database loop — commit a resource
// transaction without choosing a value, watch the store stay untouched,
// then force the choice by observation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	quantumdb "repro"
)

func main() {
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The travel schema from the paper: Available(fno, sno) and
	// Bookings(name, fno, sno) where a (flight, seat) pair is a key.
	db.MustCreateTable(quantumdb.Table{Name: "Available", Columns: []string{"fno", "sno"}})
	db.MustCreateTable(quantumdb.Table{
		Name: "Bookings", Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2},
	})
	db.MustExec("+Available(123, '5A'), +Available(123, '5B'), +Available(123, '5C')")

	// Mickey books *some* seat on flight 123. The transaction commits —
	// a seat is guaranteed — but no seat is chosen yet.
	id, err := db.Submit("-Available(123, s), +Bookings('Mickey', 123, s) :-1 Available(123, s)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed txn %d; pending=%d\n", id, db.Pending())

	// The store is untouched: all three seats still read as available if
	// we look at the relation nobody's update mentions... but note that
	// reading Available() itself would also collapse, since Mickey's
	// delete unifies with it. Peek via Stats instead.
	fmt.Printf("after commit: accepted=%d grounded=%d\n",
		db.Stats().Accepted, db.Stats().Grounded)

	// Seat 5A disappears from under Mickey — a cancellation-style blind
	// write. It passes because two other seats keep his transaction
	// satisfiable.
	if err := db.Exec("-Available(123, '5A')"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("external write consumed 5A; Mickey's commitment still holds")

	// Check-in time: observation forces the choice. The system picks a
	// seat, executes the deferred writes, and the read is repeatable from
	// now on.
	rows, err := db.Query("Bookings('Mickey', 123, s)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mickey's seat (fixed by observation): %v\n", rows[0]["s"])
	fmt.Printf("pending=%d grounded=%d\n", db.Pending(), db.Stats().Grounded)

	// A fourth traveller cannot be accommodated once capacity is
	// committed: admission control keeps the possible-worlds set
	// nonempty, so commits never roll back.
	for _, user := range []string{"Donald", "Daisy", "Goofy"} {
		_, err := db.Submit(fmt.Sprintf(
			"-Available(123, s), +Bookings('%s', 123, s) :-1 Available(123, s)", user))
		if err != nil {
			fmt.Printf("%s: rejected up front (flight full) — %v\n", user, err != nil)
			continue
		}
		fmt.Printf("%s: committed\n", user)
	}
}
