// Cloudpool: shared-use virtual resources (the paper's EC2-instance
// motivation) with durability. Tenants reserve "an instance in some
// zone, preferably zone-a" ahead of launch time; reservations survive a
// process crash via the write-ahead log and are still unground after
// recovery — late binding persists across restarts.
//
//	go run ./examples/cloudpool
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	quantumdb "repro"
)

func schema(db *quantumdb.DB) error {
	tables := []quantumdb.Table{
		{Name: "Idle", Columns: []string{"zone", "vm"}},
		{Name: "Leases", Columns: []string{"tenant", "zone", "vm"}, Key: []int{1, 2}},
		{Name: "Zone", Columns: []string{"zone", "tier"}},
	}
	for _, t := range tables {
		if err := db.CreateTable(t); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	dir, err := os.MkdirTemp("", "cloudpool")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "pool.wal")

	// ---- first process lifetime ----
	db, err := quantumdb.Open(quantumdb.Options{WALPath: walPath, SyncWAL: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := schema(db); err != nil {
		log.Fatal(err)
	}
	for _, zone := range []string{"zone-a", "zone-b"} {
		for i := 1; i <= 3; i++ {
			db.MustExec(fmt.Sprintf("+Idle('%s', 'vm-%s-%d')", zone, zone[len(zone)-1:], i))
		}
	}
	db.MustExec("+Zone('zone-a', 'premium'), +Zone('zone-b', 'standard')")

	// Three tenants reserve capacity; acme insists on the premium tier
	// (hard), the others are flexible with a soft zone-a preference.
	acme := "-Idle(z, v), +Leases('acme', z, v) :-1 Idle(z, v), Zone(z, 'premium')"
	if _, err := db.Submit(acme); err != nil {
		log.Fatal(err)
	}
	flexible := "-Idle(z, v), +Leases('%s', z, v) :-1 Idle(z, v), ?Zone(z, 'premium')"
	for _, tenant := range []string{"bravo", "cyber"} {
		if _, err := db.Submit(fmt.Sprintf(flexible, tenant)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("3 leases committed, %d pending — no VM pinned yet\n", db.Pending())

	// Simulated crash: the process dies without grounding anything.
	db.Close()
	fmt.Println("-- crash --")

	// ---- second process lifetime: recovery ----
	db2, err := quantumdb.Recover(quantumdb.Options{WALPath: walPath, SyncWAL: true}, schema)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("recovered: %d reservations still pending, still unground\n", db2.Pending())

	// Capacity drains in zone-a after recovery (maintenance pulls two
	// idle machines). The engine allows it only because the pending
	// leases still have groundings elsewhere.
	if err := db2.Exec("-Idle('zone-a', 'vm-a-1'), -Idle('zone-a', 'vm-a-2')"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("maintenance took vm-a-1, vm-a-2 — commitments reflowed")

	// Pulling the last premium machine would strand acme: refused.
	if err := db2.Exec("-Idle('zone-a', 'vm-a-3')"); err != nil {
		fmt.Println("draining the last premium VM rejected:", err)
	}

	// Launch time: each tenant starts their instance (reads collapse).
	for _, tenant := range []string{"acme", "bravo", "cyber"} {
		rows, err := db2.Query(fmt.Sprintf("Leases('%s', z, v)", tenant))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s -> %v in %v\n", tenant, rows[0]["v"], rows[0]["z"])
	}
	fmt.Printf("pending after launches: %d\n", db2.Pending())
}
