// Calendar: the paper's second motivating domain (§1) — meeting slots as
// scarce resources. Teams commit to "a slot this week" months early
// without pinning the slot; a short-notice, high-priority meeting then
// takes a specific slot, and everyone else's commitments transparently
// reflow instead of triggering a painful rescheduling cascade.
//
//	go run ./examples/calendar
package main

import (
	"fmt"
	"log"

	quantumdb "repro"
)

func main() {
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Free(room, slot) lists open reservations; Meetings(title, room,
	// slot) holds scheduled ones, keyed by (room, slot).
	db.MustCreateTable(quantumdb.Table{Name: "Free", Columns: []string{"room", "slot"}})
	db.MustCreateTable(quantumdb.Table{
		Name: "Meetings", Columns: []string{"title", "room", "slot"}, Key: []int{1, 2},
	})
	// Large(room) distinguishes big rooms (a hard requirement for the
	// offsite); Morning(slot) marks slots people prefer.
	db.MustCreateTable(quantumdb.Table{Name: "Large", Columns: []string{"room"}})
	db.MustCreateTable(quantumdb.Table{Name: "Morning", Columns: []string{"slot"}})

	for _, room := range []string{"atrium", "den", "nook"} {
		for _, slot := range []string{"mon-am", "mon-pm", "fri-am", "fri-pm"} {
			db.MustExec(fmt.Sprintf("+Free('%s', '%s')", room, slot))
		}
	}
	db.MustExec("+Large('atrium'), +Large('den')")
	db.MustExec("+Morning('mon-am'), +Morning('fri-am')")

	// Two months out: the offsite needs a large room, any slot —
	// preferably a morning. Committed, not pinned.
	offsite, err := db.Submit(
		"-Free(r, t), +Meetings('offsite', r, t) :-1 Free(r, t), Large(r), ?Morning(t)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offsite committed (txn %d) — room and time still open\n", offsite)

	// Two more flexible bookings pile in.
	if _, err := db.Submit(
		"-Free(r, t), +Meetings('1on1', r, t) :-1 Free(r, t)"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Submit(
		"-Free(r, t), +Meetings('bookclub', r, t) :-1 Free(r, t), ?Morning(t)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pending meetings: %d — the calendar is a superposition\n", db.Pending())

	// Wednesday before: the CEO needs the atrium on Friday morning,
	// exactly. A hard, specific request. In a classical calendar this is
	// where the assistant starts calling everyone; here the pending
	// meetings simply reflow around it.
	ceo := "-Free('atrium', 'fri-am'), +Meetings('ceo-review', 'atrium', 'fri-am') " +
		":-1 Free('atrium', 'fri-am')"
	if _, err := db.Submit(ceo); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ceo-review hard-booked atrium/fri-am; no one was disturbed")

	// Thursday evening: everyone finally reads their calendar, which
	// collapses the remaining uncertainty.
	rows, err := db.Query("Meetings(title, room, slot)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal calendar:")
	for _, r := range rows {
		fmt.Printf("  %-11v %-7v %v\n", r["title"], r["room"], r["slot"])
	}

	// The punchline: the offsite kept a large room, and the CEO got the
	// exact slot — simultaneously. Verify the offsite's hard constraint.
	check, err := db.Query("Meetings('offsite', r, t), Large(r)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffsite in a large room: %v\n", len(check) == 1)

	// And capacity protection still applies: removing every remaining
	// free large-room slot while something depends on it is refused.
	if db.Pending() == 0 {
		fmt.Println("calendar fully extensional; quantum state consumed")
	}
}
