// Travel: the paper's social travel scenario end to end — entangled
// resource transactions ("I want to sit next to my friend"), deferred
// grounding, coordination on partner arrival, and the §2 design decision
// that a later hard request beats an earlier optional preference.
//
//	go run ./examples/travel
package main

import (
	"fmt"
	"log"

	quantumdb "repro"
)

func main() {
	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	setupFlight(db)

	co := db.NewCoordinator()

	// Mickey books first, with OPTIONAL forward constraints: sit next to
	// Goofy — who has not arrived in the system yet.
	mickey := "-Available(123, s), +Bookings('Mickey', 123, s) :-1 " +
		"Available(123, s), ?Bookings('Goofy', 123, m), ?Adjacent(123, s, m)"
	if _, err := co.Submit(mickey, "Mickey", "Goofy"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mickey committed; pending=%d (waiting for Goofy)\n", db.Pending())

	// Pluto hard-requests seat 1A. Optional preferences never block a
	// hard constraint (§2): Pluto gets in even if the cached world had
	// Mickey at 1A.
	pluto := "-Available(123, '1A'), +Bookings('Pluto', 123, '1A') :-1 Available(123, '1A')"
	if _, err := db.Submit(pluto); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pluto hard-booked 1A; Mickey is transparently reseated in the possible worlds")

	// Goofy arrives. Both partners are now in the system, so the
	// coordinator grounds the pair together — backtracking over Mickey's
	// seat until the adjacency constraint holds.
	goofy := "-Available(123, s), +Bookings('Goofy', 123, s) :-1 " +
		"Available(123, s), ?Bookings('Mickey', 123, m), ?Adjacent(123, s, m)"
	if _, err := co.Submit(goofy, "Goofy", "Mickey"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Goofy arrived; coordinated pairs=%d, pending=%d\n",
		co.CoordinatedPairs(), db.Pending())

	rows, err := db.Query("Bookings(n, 123, s)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal manifest:")
	for _, r := range rows {
		fmt.Printf("  %-8v seat %v\n", r["n"], r["s"])
	}
	adj, err := db.Query("Bookings('Mickey', 123, a), Bookings('Goofy', 123, b), Adjacent(123, a, b)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMickey next to Goofy: %v\n", len(adj) > 0)

	// Contrast with the eager strategy: had Mickey been assigned a seat
	// immediately (as any classical system must), the system could not
	// have reconciled Pluto's 1A demand AND Goofy's adjacency wish — it
	// is the deferral that lets all three succeed.
	st := db.Stats()
	fmt.Printf("\nengine: accepted=%d rejected=%d cacheHits=%d semanticReorders=%d\n",
		st.Accepted, st.Rejected, st.CacheHits, st.SemanticReorders)
}

func setupFlight(db *quantumdb.DB) {
	db.MustCreateTable(quantumdb.Table{Name: "Available", Columns: []string{"fno", "sno"}})
	db.MustCreateTable(quantumdb.Table{
		Name: "Bookings", Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2},
	})
	db.MustCreateTable(quantumdb.Table{
		Name: "Adjacent", Columns: []string{"fno", "s1", "s2"},
		Indexes: [][]int{{0, 1}, {0, 2}},
	})
	// Two rows of three seats; within-row adjacency, both directions.
	for _, row := range []string{"1", "2"} {
		for _, col := range []string{"A", "B", "C"} {
			db.MustExec(fmt.Sprintf("+Available(123, '%s%s')", row, col))
		}
		for _, p := range [][2]string{{"A", "B"}, {"B", "C"}} {
			db.MustExec(fmt.Sprintf("+Adjacent(123, '%s%s', '%s%s'), +Adjacent(123, '%s%s', '%s%s')",
				row, p[0], row, p[1], row, p[1], row, p[0]))
		}
	}
}
