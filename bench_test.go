package quantumdb

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benchmarks for the design decisions called out in
// DESIGN.md. These run at a reduced scale so `go test -bench=.` finishes
// in minutes; `cmd/qdbbench` regenerates the full paper-scale series.

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/workload"
)

// benchFig56 is a reduced Figure 5/6 configuration (paper: 34 rows).
var benchFig56 = bench.Fig56Config{Rows: 10, K: 61, Seed: 1}

// benchFig7 is a reduced Figure 7 / Table 2 configuration (paper: 10-100
// flights of 50 rows).
var benchFig7 = bench.Fig7Config{
	MinFlights: 2, MaxFlights: 6, FlightStep: 2,
	RowsPerFlight: 10, Ks: []int{4, 8, 12}, Seed: 1,
}

// benchFig89 is a reduced Figure 8/9 configuration (paper: 6000 ops over
// 40 flights of 50 rows).
var benchFig89 = bench.Fig89Config{
	Flights: 4, RowsPerFlight: 10, Total: 120,
	ReadPcts: []int{0, 30, 60, 90}, Ks: []int{4, 8}, Seed: 1,
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable1(bench.Table1Config{Rows: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig56(benchFig56); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig56(benchFig56)
		if err != nil {
			b.Fatal(err)
		}
		res.RenderFig6(io.Discard)
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig7(benchFig7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(benchFig7)
		if err != nil {
			b.Fatal(err)
		}
		res.RenderTable2(io.Discard)
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig89(benchFig89); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig89(benchFig89)
		if err != nil {
			b.Fatal(err)
		}
		res.RenderFig9(io.Discard)
	}
}

// tupleOf builds a value.Tuple from ints and strings, for benchmark
// seeding.
func tupleOf(vs ...any) value.Tuple {
	t := make(value.Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			t[i] = value.NewInt(int64(x))
		case string:
			t[i] = value.NewString(x)
		default:
			panic("tupleOf: unsupported type")
		}
	}
	return t
}

// BenchmarkRepeatedAdmission is the cross-solve caching headline: a full
// partition receives the same (rejected) booking over and over. The
// first rejection pays a full composed-body unsatisfiability proof;
// every later one is answered from the negative solve cache keyed by
// (transaction content, store epochs) — watch allocs/op collapse between
// the cache=off and cache=on variants. The acceptance bar (>=2x fewer
// allocs on the second-and-later solve of an unchanged partition) is
// asserted in internal/core's TestCacheHitPathAllocs; this benchmark
// reports the numbers.
func BenchmarkRepeatedAdmission(b *testing.B) {
	const seats = 6
	run := func(opt core.Options) func(*testing.B) {
		return func(b *testing.B) {
			db := relstore.NewDB()
			db.MustCreateTable(relstore.Schema{Name: "Available", Columns: []string{"fno", "sno"}})
			db.MustCreateTable(relstore.Schema{Name: "Bookings", Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2}})
			for i := 0; i < seats; i++ {
				db.MustInsert("Available", tupleOf(1, fmt.Sprintf("s%d", i)))
			}
			q, err := core.New(db, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer q.Close()
			mk := func(user string) *txn.T {
				return txn.MustParse(fmt.Sprintf(
					"-Available(1, s), +Bookings('%s', 1, s) :-1 Available(1, s)", user))
			}
			for i := 0; i < seats; i++ {
				if _, err := q.Submit(mk(fmt.Sprintf("u%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			late := mk("late")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Submit(late); err == nil {
					b.Fatal("over-full flight accepted a booking")
				}
			}
		}
	}
	b.Run("cache=on", run(core.Options{}))
	b.Run("cache=off", run(core.Options{DisableCache: true}))
}

// BenchmarkGroundReplay measures collapse of an unchanged partition: with
// the cross-solve solution cache, GroundAll replays the admission-time
// groundings (zero chain solves); without it, every grounding re-solves
// the remaining chain.
func BenchmarkGroundReplay(b *testing.B) {
	const seats = 6
	run := func(opt core.Options) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := relstore.NewDB()
				db.MustCreateTable(relstore.Schema{Name: "Available", Columns: []string{"fno", "sno"}})
				db.MustCreateTable(relstore.Schema{Name: "Bookings", Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2}})
				for s := 0; s < seats; s++ {
					db.MustInsert("Available", tupleOf(1, fmt.Sprintf("s%d", s)))
				}
				q, err := core.New(db, opt)
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < seats; s++ {
					tx := txn.MustParse(fmt.Sprintf(
						"-Available(1, s), +Bookings('u%d', 1, s) :-1 Available(1, s)", s))
					if _, err := q.Submit(tx); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := q.GroundAll(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				q.Close()
				b.StartTimer()
			}
		}
	}
	b.Run("cache=on", run(core.Options{}))
	b.Run("cache=off", run(core.Options{DisableCache: true}))
}

// BenchmarkGroundAllScaling measures partition-parallel grounding: N
// independent flight pools collapsed by one GroundAll, swept over worker
// counts. The per-op metric to watch is ns/op falling as workers rise
// (the acceptance bar for the sharded scheduler was >= 2x at 4 workers
// on 8 partitions).
func BenchmarkGroundAllScaling(b *testing.B) {
	cfg := bench.DefaultScale()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			var groundTime time.Duration
			var grounded int
			for i := 0; i < b.N; i++ {
				r, err := bench.RunScale(c)
				if err != nil {
					b.Fatal(err)
				}
				groundTime += r.Ground
				grounded += r.Grounded
			}
			b.ReportMetric(groundTime.Seconds()/float64(b.N), "groundall-s/op")
			b.ReportMetric(float64(grounded)/groundTime.Seconds(), "txn/s")
		})
	}
}

// ---- Ablations (design decisions from DESIGN.md) ----

// ablationStream runs one Random-order entangled stream under the given
// options and reports coordination as a benchmark metric.
func ablationStream(b *testing.B, opt bench.StreamOptions) {
	b.Helper()
	cfg := workload.Config{Flights: 2, RowsPerFlight: 10}
	world := workload.NewWorld(cfg)
	pairs := workload.EntangledPairs(cfg, cfg.Seats()/2)
	var coord float64
	for i := 0; i < b.N; i++ {
		stream := workload.Arrival(pairs, workload.Random, bench.Rng(int64(i+1)))
		r, err := bench.RunQDBStreamOpt(world, pairs, stream, opt)
		if err != nil {
			b.Fatal(err)
		}
		coord = r.CoordinationPct
	}
	b.ReportMetric(coord, "coordination%")
}

// BenchmarkAblationSolutionCache compares admission with and without the
// solution cache (§4: the cache amortizes satisfiability checks).
func BenchmarkAblationSolutionCache(b *testing.B) {
	b.Run("cache=on", func(b *testing.B) {
		ablationStream(b, bench.StreamOptions{Core: core.Options{K: 8}})
	})
	b.Run("cache=off", func(b *testing.B) {
		ablationStream(b, bench.StreamOptions{Core: core.Options{K: 8, DisableCache: true}})
	})
}

// BenchmarkAblationPartitioning compares per-flight partitions against a
// single global composed body (§4-5 credit partitioning for Figure 7's
// linear scaling).
func BenchmarkAblationPartitioning(b *testing.B) {
	b.Run("partitioning=on", func(b *testing.B) {
		ablationStream(b, bench.StreamOptions{Core: core.Options{K: 8}})
	})
	b.Run("partitioning=off", func(b *testing.B) {
		ablationStream(b, bench.StreamOptions{Core: core.Options{K: 8, DisablePartitioning: true}})
	})
}

// BenchmarkAblationSerializability compares semantic move-to-front
// grounding against strict prefix grounding (§3.2.3) under a read-heavy
// mixed workload, where out-of-order collapse matters.
func BenchmarkAblationSerializability(b *testing.B) {
	run := func(mode core.Mode) func(*testing.B) {
		return func(b *testing.B) {
			cfg := bench.Fig89Config{
				Flights: 2, RowsPerFlight: 10, Total: 60,
				ReadPcts: []int{50}, Ks: []int{8}, Seed: 1, Mode: mode,
			}
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunFig89(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("mode=semantic", run(core.Semantic))
	b.Run("mode=strict", run(core.Strict))
}

// BenchmarkAblationChooser compares first-fit collapse against the
// flexibility-maximizing chooser (§3.2.2) and the eager-coordination
// extension, reporting achieved coordination.
func BenchmarkAblationChooser(b *testing.B) {
	k := core.Options{K: 4}
	b.Run("chooser=firstfit", func(b *testing.B) {
		ablationStream(b, bench.StreamOptions{Core: k})
	})
	b.Run("chooser=flexibility", func(b *testing.B) {
		opt := k
		opt.Chooser = workload.FlexibilityChooser
		opt.ChooserSample = 4
		ablationStream(b, bench.StreamOptions{Core: opt})
	})
	b.Run("chooser=flexibility+eager", func(b *testing.B) {
		opt := k
		opt.Chooser = workload.FlexibilityChooser
		opt.ChooserSample = 4
		ablationStream(b, bench.StreamOptions{Core: opt, Eager: true})
	})
}

// BenchmarkAblationSearchDepth compares the dynamic greedy join planner
// against the naive static order (the paper's optimizer_search_depth
// discussion).
func BenchmarkAblationSearchDepth(b *testing.B) {
	run := func(p relstore.PlannerMode) func(*testing.B) {
		return func(b *testing.B) {
			ablationStream(b, bench.StreamOptions{Core: core.Options{K: 8, Planner: p}})
		}
	}
	b.Run("planner=dynamic", run(relstore.PlanDynamic))
	b.Run("planner=static", run(relstore.PlanStatic))
}

// BenchmarkParallelSubmit measures admission throughput under a
// concurrent submit storm on disjoint partitions, swept over worker
// counts — the optimistic-admission headline. Watch submit/s rise with
// workers (solves overlap outside the admission lock); the serial
// variant is the ablation baseline at the widest pool. The shapes come
// from bench.SubmitShapes, shared with the CI trajectory artifact
// (qdbbench -json), so the two series stay comparable.
func BenchmarkParallelSubmit(b *testing.B) {
	run := func(c bench.SubmitConfig) func(*testing.B) {
		return func(b *testing.B) {
			var elapsed time.Duration
			var submitted int
			for i := 0; i < b.N; i++ {
				r, err := bench.RunParallelSubmit(c)
				if err != nil {
					b.Fatal(err)
				}
				elapsed += r.Elapsed
				submitted += r.Submitted
			}
			b.ReportMetric(elapsed.Seconds()/float64(b.N), "storm-s/op")
			b.ReportMetric(float64(submitted)/elapsed.Seconds(), "submit/s")
		}
	}
	for _, s := range bench.SubmitShapes() {
		b.Run(strings.TrimPrefix(s.Name, "BenchmarkParallelSubmit/"), run(s.Cfg))
	}
}

// BenchmarkParallelRead measures collapse-free snapshot-read throughput
// swept over reader counts while one applier churns blind writes — the
// gate-free read headline. Watch read/s rise with readers and per-read
// latency hold near the applier-idle baseline (the last variant):
// snapshot readers pin a copy-on-write version and never queue behind
// the store gate's exclusive holders. The shapes come from
// bench.ReadShapes, shared with the CI trajectory artifact (qdbbench
// -json, BENCH_read.json), so the two series stay comparable.
func BenchmarkParallelRead(b *testing.B) {
	run := func(c bench.ReadConfig) func(*testing.B) {
		return func(b *testing.B) {
			var elapsed time.Duration
			var reads int
			for i := 0; i < b.N; i++ {
				r, err := bench.RunParallelRead(c)
				if err != nil {
					b.Fatal(err)
				}
				elapsed += r.Elapsed
				reads += r.Reads
			}
			b.ReportMetric(elapsed.Seconds()/float64(b.N), "storm-s/op")
			b.ReportMetric(float64(reads)/elapsed.Seconds(), "read/s")
		}
	}
	for _, s := range bench.ReadShapes() {
		b.Run(strings.TrimPrefix(s.Name, "BenchmarkParallelRead/"), run(s.Cfg))
	}
}

// BenchmarkGroundWALSync measures durable grounding throughput — every
// grounding batch fsynced before it applies (SyncWAL) — swept over WAL
// segment counts. One segment is the pre-sharding baseline where all
// partitions serialize on a single fsync stream; watch txn/s rise with
// segments as disjoint partitions stop sharing a log. The shapes come
// from bench.WALSyncShapes, shared with the CI trajectory artifact
// (qdbbench -json, BENCH_wal.json), so the two series stay comparable.
func BenchmarkGroundWALSync(b *testing.B) {
	run := func(c bench.WALSyncConfig) func(*testing.B) {
		return func(b *testing.B) {
			var groundTime time.Duration
			var grounded int
			for i := 0; i < b.N; i++ {
				r, err := bench.RunWALSync(c)
				if err != nil {
					b.Fatal(err)
				}
				groundTime += r.Ground
				grounded += r.Grounded
			}
			b.ReportMetric(groundTime.Seconds()/float64(b.N), "groundall-s/op")
			b.ReportMetric(float64(grounded)/groundTime.Seconds(), "txn/s")
		}
	}
	for _, s := range bench.WALSyncShapes() {
		b.Run(strings.TrimPrefix(s.Name, "BenchmarkGroundWALSync/"), run(s.Cfg))
	}
}
