// Command qdbd runs a quantum database as a network service (the
// middle-tier of Figure 4), speaking a JSON-lines protocol over TCP.
//
//	qdbd -addr :7683 -wal /var/lib/qdb/qdb.wal
//
// Each request is one JSON object per line, e.g.:
//
//	{"op":"create","table":{"name":"Available","columns":["fno","sno"]}}
//	{"op":"exec","facts":"+Available(1, '1A')"}
//	{"op":"txn","txn":"-Available(1, s), +Bookings('M', 1, s) :-1 Available(1, s)"}
//	{"op":"read","query":"Bookings('M', 1, s)"}
//	{"op":"snapread","query":"Available(1, s)"}
//
// "read" collapses superpositions like an in-process Query; "snapread"
// serves the committed state from a copy-on-write snapshot — it never
// collapses anything and never contends with concurrent grounding.
//
// See internal/server for the full request/response schema and a Go
// client.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	quantumdb "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7683", "listen address")
	wal := flag.String("wal", "", "write-ahead log root path, segments at <path>.0.. (durability off when empty)")
	walSegments := flag.Int("wal-segments", 1,
		"number of partition-affine WAL segment files; groundings of partitions on different segments append and fsync independently")
	syncWAL := flag.Bool("sync-wal", false,
		"fsync every WAL batch before acknowledging it (group commit per segment); off, a machine crash may lose the unsynced tail")
	k := flag.Int("k", 0, "per-partition pending bound (0 = paper default 61)")
	strict := flag.Bool("strict", false, "strict (classical) serializability instead of semantic")
	workers := flag.Int("workers", 0, "scheduler worker pool size for parallel partition grounding (0 = GOMAXPROCS, 1 = serial)")
	serialAdmission := flag.Bool("serial-admission", false,
		"hold the admission lock across each Submit's chain solve instead of admitting optimistically (ablation)")
	flag.Parse()

	opt := quantumdb.Options{
		WALPath: *wal, SyncWAL: *syncWAL, WALSegments: *walSegments,
		K: *k, Workers: *workers, SerialAdmission: *serialAdmission,
	}
	if *strict {
		opt.Mode = quantumdb.Strict
	}
	db, err := quantumdb.Open(opt)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	admission := "optimistic"
	if *serialAdmission {
		admission = "serial"
	}
	durability := "off"
	if *wal != "" {
		durability = fmt.Sprintf("%d segment(s), sync=%v", *walSegments, *syncWAL)
	}
	fmt.Printf("qdbd listening on %s (wal=%q [%s], k=%d, mode=%v, workers=%d, admission=%s)\n",
		l.Addr(), *wal, durability, *k, opt.Mode, db.Engine().Workers(), admission)
	log.Fatal(server.New(db).Serve(l))
}
