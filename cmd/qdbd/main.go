// Command qdbd runs a quantum database as a network service (the
// middle-tier of Figure 4). It speaks two protocols on one port: a
// length-prefixed, CRC-framed binary protocol with per-connection
// request pipelining (what the Go client dials by default), and a
// JSON-lines protocol for anything that can write a JSON object to a
// socket. A connection opts into binary by leading with a 4-byte magic
// preamble; everything else is served as JSON lines.
//
//	qdbd -addr :7683 -wal /var/lib/qdb/qdb.wal -metrics-addr :7684
//
// Each JSON request is one object per line, e.g.:
//
//	{"op":"create","table":{"name":"Available","columns":["fno","sno"]}}
//	{"op":"exec","facts":"+Available(1, '1A')"}
//	{"op":"txn","txn":"-Available(1, s), +Bookings('M', 1, s) :-1 Available(1, s)"}
//	{"op":"read","query":"Bookings('M', 1, s)"}
//	{"op":"snapread","query":"Available(1, s)"}
//
// "read" collapses superpositions like an in-process Query; "snapread"
// serves the committed state from a copy-on-write snapshot — it never
// collapses anything and never contends with concurrent grounding.
//
// With -metrics-addr, a second HTTP listener serves the engine's
// telemetry: /metrics (Prometheus text exposition), /healthz,
// /debug/vars (JSON), /debug/slowops (the slow-op ring; arm with
// -slow-op), and /debug/pprof. SIGINT/SIGTERM shut down gracefully:
// the server drains in-flight requests, then the database closes (WAL
// group commit flushed) before the process exits.
//
// With -follow, qdbd runs as a read-only log-shipping replica instead:
//
//	qdbd -follow 127.0.0.1:7683 -addr :7685 -pull-interval 100ms
//
// The follower bootstraps a checkpoint image from the leader (retrying
// until the leader is up), replays its WAL tail — long-polling by
// default, so batches ship the moment they commit — and serves
// snapread/pending/stats/lag from the replayed store; every mutating
// verb is refused with a redirect to the leader. The leader needs no
// flags — any WAL-backed qdbd ships its log on demand. Schema must
// exist on the leader before the follower bootstraps (table creation is
// not logged; it rides the checkpoint image). With -cache-dir the
// follower spills its replayed image locally and a restart resumes from
// it instead of re-bootstrapping over the network; with -promote-wal
// the promote verb (qdbcli promote [force]) turns the process into the
// leader in place: fence the old leader, drain its sealed tail, and
// start admitting writes at the next term. Deposed leaders flip
// read-only and redirect clients at the winner.
//
// See internal/server for the full request/response schema and a Go
// client.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7683", "listen address")
	metricsAddr := flag.String("metrics-addr", "",
		"HTTP listen address for /metrics, /healthz, /debug/vars, /debug/slowops, and /debug/pprof (off when empty)")
	slowOp := flag.Duration("slow-op", 0,
		"record any engine operation slower than this into the slow-op ring at /debug/slowops (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long a SIGINT/SIGTERM shutdown waits for in-flight requests before closing their connections")
	maxInflight := flag.Int("max-inflight", 0,
		"per-connection pipelining window: requests a binary connection may have dispatched at once (0 = default 64)")
	maxConns := flag.Int("max-conns", 0,
		"connection cap; connections beyond it are refused at accept (0 = unlimited)")
	shedWait := flag.Duration("shed-wait", 0,
		"queue-wait shed threshold: a request that cannot enter its connection's window within this long is refused with a retryable overloaded error (0 = default 50ms)")
	wal := flag.String("wal", "", "write-ahead log root path, segments at <path>.0.. (durability off when empty)")
	walSegments := flag.Int("wal-segments", 1,
		"number of partition-affine WAL segment files; groundings of partitions on different segments append and fsync independently")
	syncWAL := flag.Bool("sync-wal", false,
		"fsync every WAL batch before acknowledging it (group commit per segment); off, a machine crash may lose the unsynced tail")
	k := flag.Int("k", 0, "per-partition pending bound (0 = paper default 61)")
	strict := flag.Bool("strict", false, "strict (classical) serializability instead of semantic")
	workers := flag.Int("workers", 0, "scheduler worker pool size for parallel partition grounding (0 = GOMAXPROCS, 1 = serial)")
	serialAdmission := flag.Bool("serial-admission", false,
		"hold the admission lock across each Submit's chain solve instead of admitting optimistically (ablation)")
	follow := flag.String("follow", "",
		"leader address to replicate from; runs qdbd as a read-only follower (most other flags are ignored)")
	pullInterval := flag.Duration("pull-interval", 200*time.Millisecond,
		"how often a follower pulls the leader's WAL tail")
	longPoll := flag.Duration("long-poll", 10*time.Second,
		"follower pulls park at the leader up to this long waiting for new batches — push-style shipping (0 = plain polling every -pull-interval)")
	cacheDir := flag.String("cache-dir", "",
		"follower-local directory for the persistent replica image; restarts resume from it instead of re-bootstrapping over the network")
	promoteWAL := flag.String("promote-wal", "",
		"WAL root path for this follower if it is promoted to leader; arms the promote verb (promotion refused when empty)")
	promoteCheckpoint := flag.String("promote-checkpoint", "",
		"checkpoint file cut right after a promotion, anchoring the promoted store durably (recommended with -promote-wal)")
	advertise := flag.String("advertise", "",
		"address peers and redirected clients should reach this server at (defaults to -addr)")
	flag.Parse()

	if *advertise == "" {
		*advertise = *addr
	}
	if *follow != "" {
		runFollower(followerConfig{
			leader: *follow, addr: *addr, metricsAddr: *metricsAddr,
			advertise: *advertise, cacheDir: *cacheDir,
			promoteWAL: *promoteWAL, promoteCheckpoint: *promoteCheckpoint,
			walSegments: *walSegments, syncWAL: *syncWAL,
			pullInterval: *pullInterval, longPoll: *longPoll,
			drainTimeout: *drainTimeout,
			maxInflight:  *maxInflight, maxConns: *maxConns, shedWait: *shedWait,
		})
		return
	}

	opt := quantumdb.Options{
		WALPath: *wal, SyncWAL: *syncWAL, WALSegments: *walSegments,
		K: *k, Workers: *workers, SerialAdmission: *serialAdmission,
		SlowOpThreshold: *slowOp,
	}
	if *strict {
		opt.Mode = quantumdb.Strict
	}
	db, err := quantumdb.Open(opt)
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(db)
	srv.SetLimits(*maxInflight, *maxConns, *shedWait)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("qdbd metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, db.Metrics().Handler(db.SlowOps())); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	admission := "optimistic"
	if *serialAdmission {
		admission = "serial"
	}
	durability := "off"
	if *wal != "" {
		durability = fmt.Sprintf("%d segment(s), sync=%v", *walSegments, *syncWAL)
	}
	fmt.Printf("qdbd listening on %s (wal=%q [%s], k=%d, mode=%v, workers=%d, admission=%s)\n",
		l.Addr(), *wal, durability, *k, opt.Mode, db.Engine().Workers(), admission)

	// Graceful shutdown: on SIGINT/SIGTERM, drain the TCP server (stop
	// accepting, let in-flight requests finish writing responses), then
	// close the database so the WAL tail is flushed before exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("qdbd: %v, draining (timeout %v)\n", s, *drainTimeout)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := db.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	case err := <-serveErr:
		db.Close()
		log.Fatal(err)
	}
}

// followerConfig gathers follower-mode settings (too many for
// positional arguments).
type followerConfig struct {
	leader, addr, metricsAddr     string
	advertise, cacheDir           string
	promoteWAL, promoteCheckpoint string
	walSegments                   int
	syncWAL                       bool
	pullInterval, longPoll        time.Duration
	drainTimeout                  time.Duration
	maxInflight, maxConns         int
	shedWait                      time.Duration
}

// runFollower is follower mode: bootstrap from the leader — or resume
// from the local cache when -cache-dir has a spilled image — replay its
// WAL (long-polling by default, so batches ship the moment they
// commit), and serve the read-only verb subset plus lag. Mutations are
// refused with a redirect to the leader. With -promote-wal, the promote
// verb (qdbcli promote) turns this process into the leader in place:
// fence the old leader, drain its sealed tail, rebuild an admitting
// engine over the replayed store, and start taking writes at the new
// term.
func runFollower(cfg followerConfig) {
	rc := &server.ReplicaClient{Addr: cfg.leader, Wait: cfg.longPoll}
	f := replica.NewFollower(rc)
	f.Logf = log.Printf
	f.LongPoll = cfg.longPoll > 0
	f.CacheDir = cfg.cacheDir
	f.SetLeaderAddr(cfg.leader)

	// Bootstrap (or cache resume), retrying under a capped jittered
	// backoff so follower and leader may start in either order — and
	// aborting promptly on SIGINT/SIGTERM instead of sleeping through
	// the shutdown.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	const bootstrapWindow = 30 * time.Second
	deadline := time.Now().Add(bootstrapWindow)
	bo := replica.NewBackoff(250*time.Millisecond, 5*time.Second)
	for {
		err := f.BootstrapOrResume()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("bootstrap from %s: %v (gave up after %v)", cfg.leader, err, bootstrapWindow)
		}
		log.Printf("bootstrap from %s: %v (retrying)", cfg.leader, err)
		t := time.NewTimer(bo.Next())
		select {
		case s := <-sig:
			t.Stop()
			fmt.Printf("qdbd: %v during bootstrap, exiting\n", s)
			return
		case <-t.C:
		}
	}

	stop := make(chan struct{})
	go f.Run(cfg.pullInterval, stop)

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.NewFollower(f)
	srv.SetLimits(cfg.maxInflight, cfg.maxConns, cfg.shedWait)
	if cfg.promoteWAL != "" {
		srv.EnablePromotion(replica.PromoteConfig{
			WAL: quantumdb.Options{
				WALPath: cfg.promoteWAL, SyncWAL: cfg.syncWAL,
				WALSegments: cfg.walSegments,
			},
			Addr:           cfg.advertise,
			CheckpointPath: cfg.promoteCheckpoint,
		})
	}

	if cfg.metricsAddr != "" {
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("qdbd metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, f.Metrics().Handler(f.SlowOps())); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	promotable := "no"
	if cfg.promoteWAL != "" {
		promotable = "yes"
	}
	fmt.Printf("qdbd following %s on %s (applied seq %d, pull every %v, long-poll %v, cache %q, promotable %s)\n",
		cfg.leader, l.Addr(), f.AppliedSeq(), cfg.pullInterval, cfg.longPoll, cfg.cacheDir, promotable)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("qdbd: %v, draining (timeout %v)\n", s, cfg.drainTimeout)
		close(stop)
		if err := srv.Shutdown(cfg.drainTimeout); err != nil {
			log.Printf("drain: %v", err)
		}
		if db := srv.DB(); db != nil {
			// Promoted mid-run: we are the leader now; flush and close
			// the engine so the WAL tail is durable.
			if err := db.Close(); err != nil {
				log.Fatalf("close promoted engine: %v", err)
			}
		} else if err := f.SaveCache(); err != nil {
			log.Printf("cache spill: %v", err)
		}
	case err := <-serveErr:
		close(stop)
		log.Fatal(err)
	}
}
