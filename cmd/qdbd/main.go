// Command qdbd runs a quantum database as a network service (the
// middle-tier of Figure 4), speaking a JSON-lines protocol over TCP.
//
//	qdbd -addr :7683 -wal /var/lib/qdb/qdb.wal -metrics-addr :7684
//
// Each request is one JSON object per line, e.g.:
//
//	{"op":"create","table":{"name":"Available","columns":["fno","sno"]}}
//	{"op":"exec","facts":"+Available(1, '1A')"}
//	{"op":"txn","txn":"-Available(1, s), +Bookings('M', 1, s) :-1 Available(1, s)"}
//	{"op":"read","query":"Bookings('M', 1, s)"}
//	{"op":"snapread","query":"Available(1, s)"}
//
// "read" collapses superpositions like an in-process Query; "snapread"
// serves the committed state from a copy-on-write snapshot — it never
// collapses anything and never contends with concurrent grounding.
//
// With -metrics-addr, a second HTTP listener serves the engine's
// telemetry: /metrics (Prometheus text exposition), /healthz,
// /debug/vars (JSON), /debug/slowops (the slow-op ring; arm with
// -slow-op), and /debug/pprof. SIGINT/SIGTERM shut down gracefully:
// the server drains in-flight requests, then the database closes (WAL
// group commit flushed) before the process exits.
//
// With -follow, qdbd runs as a read-only log-shipping replica instead:
//
//	qdbd -follow 127.0.0.1:7683 -addr :7685 -pull-interval 100ms
//
// The follower bootstraps a checkpoint image from the leader (retrying
// until the leader is up), replays its WAL by polling every
// -pull-interval, and serves snapread/pending/stats/lag from the
// replayed store; every mutating verb is refused. The leader needs no
// flags — any WAL-backed qdbd ships its log on demand. Schema must
// exist on the leader before the follower bootstraps (table creation is
// not logged; it rides the checkpoint image).
//
// See internal/server for the full request/response schema and a Go
// client.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	quantumdb "repro"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7683", "listen address")
	metricsAddr := flag.String("metrics-addr", "",
		"HTTP listen address for /metrics, /healthz, /debug/vars, /debug/slowops, and /debug/pprof (off when empty)")
	slowOp := flag.Duration("slow-op", 0,
		"record any engine operation slower than this into the slow-op ring at /debug/slowops (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long a SIGINT/SIGTERM shutdown waits for in-flight requests before closing their connections")
	wal := flag.String("wal", "", "write-ahead log root path, segments at <path>.0.. (durability off when empty)")
	walSegments := flag.Int("wal-segments", 1,
		"number of partition-affine WAL segment files; groundings of partitions on different segments append and fsync independently")
	syncWAL := flag.Bool("sync-wal", false,
		"fsync every WAL batch before acknowledging it (group commit per segment); off, a machine crash may lose the unsynced tail")
	k := flag.Int("k", 0, "per-partition pending bound (0 = paper default 61)")
	strict := flag.Bool("strict", false, "strict (classical) serializability instead of semantic")
	workers := flag.Int("workers", 0, "scheduler worker pool size for parallel partition grounding (0 = GOMAXPROCS, 1 = serial)")
	serialAdmission := flag.Bool("serial-admission", false,
		"hold the admission lock across each Submit's chain solve instead of admitting optimistically (ablation)")
	follow := flag.String("follow", "",
		"leader address to replicate from; runs qdbd as a read-only follower (most other flags are ignored)")
	pullInterval := flag.Duration("pull-interval", 200*time.Millisecond,
		"how often a follower pulls the leader's WAL tail")
	flag.Parse()

	if *follow != "" {
		runFollower(*follow, *addr, *metricsAddr, *pullInterval, *drainTimeout)
		return
	}

	opt := quantumdb.Options{
		WALPath: *wal, SyncWAL: *syncWAL, WALSegments: *walSegments,
		K: *k, Workers: *workers, SerialAdmission: *serialAdmission,
		SlowOpThreshold: *slowOp,
	}
	if *strict {
		opt.Mode = quantumdb.Strict
	}
	db, err := quantumdb.Open(opt)
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(db)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("qdbd metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, db.Metrics().Handler(db.SlowOps())); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	admission := "optimistic"
	if *serialAdmission {
		admission = "serial"
	}
	durability := "off"
	if *wal != "" {
		durability = fmt.Sprintf("%d segment(s), sync=%v", *walSegments, *syncWAL)
	}
	fmt.Printf("qdbd listening on %s (wal=%q [%s], k=%d, mode=%v, workers=%d, admission=%s)\n",
		l.Addr(), *wal, durability, *k, opt.Mode, db.Engine().Workers(), admission)

	// Graceful shutdown: on SIGINT/SIGTERM, drain the TCP server (stop
	// accepting, let in-flight requests finish writing responses), then
	// close the database so the WAL tail is flushed before exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("qdbd: %v, draining (timeout %v)\n", s, *drainTimeout)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := db.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	case err := <-serveErr:
		db.Close()
		log.Fatal(err)
	}
}

// runFollower is follower mode: bootstrap from the leader (retrying
// until it is reachable — follower and leader may start in either
// order), replay its WAL on a polling cadence, and serve the read-only
// verb subset plus lag. The replayed store is in-memory only; a
// follower restart just re-bootstraps, which is exactly the resync path
// it already needs for leader truncation.
func runFollower(leader, addr, metricsAddr string, pullInterval, drainTimeout time.Duration) {
	f := replica.NewFollower(&server.ReplicaClient{Addr: leader})
	f.Logf = log.Printf

	const bootstrapWindow = 30 * time.Second
	deadline := time.Now().Add(bootstrapWindow)
	for {
		err := f.Bootstrap()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("bootstrap from %s: %v (gave up after %v)", leader, err, bootstrapWindow)
		}
		log.Printf("bootstrap from %s: %v (retrying)", leader, err)
		time.Sleep(time.Second)
	}

	stop := make(chan struct{})
	go f.Run(pullInterval, stop)

	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.NewFollower(f)

	if metricsAddr != "" {
		ml, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("qdbd metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, f.Metrics().Handler(f.SlowOps())); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	fmt.Printf("qdbd following %s on %s (applied seq %d, pull every %v)\n",
		leader, l.Addr(), f.AppliedSeq(), pullInterval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("qdbd: %v, draining (timeout %v)\n", s, drainTimeout)
		close(stop)
		if err := srv.Shutdown(drainTimeout); err != nil {
			log.Printf("drain: %v", err)
		}
	case err := <-serveErr:
		close(stop)
		log.Fatal(err)
	}
}
