// Command qdbcli is an interactive shell over a quantum database. It
// speaks the paper's Datalog-like notation and makes the quantum
// behaviour observable: commit without grounding, collapse on read, the
// pending-transaction count, and forced grounding.
//
//	$ qdbcli
//	qdb> create Available(fno, sno)
//	qdb> create Bookings(name, fno, sno) key 1 2
//	qdb> exec +Available(123, '5A'), +Available(123, '5B')
//	qdb> txn -Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s)
//	committed txn 1 (pending: 1)
//	qdb> read Bookings('Mickey', f, s)
//	f=123 s=5A        <- observation collapsed the superposition
//
// `demo` loads the travel schema with one small flight.
//
// With -addr, qdbcli runs one command against a remote qdbd (leader or
// follower) and exits — the scripting face of the JSON-lines protocol:
//
//	qdbcli -addr 127.0.0.1:7685 lag        -> seq=42 applied=42 lag=0
//	qdbcli -addr 127.0.0.1:7685 peek 'Bookings(n, 1, s)'
//	qdbcli -addr 127.0.0.1:7683 txn "-Available(1, s), ... :-1 Available(1, s)"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	quantumdb "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "",
		"remote qdbd address; runs the single command in the remaining args and exits")
	proto := flag.String("proto", "binary",
		"wire protocol for -addr: binary (framed, pipelined) or json (JSON lines)")
	flag.Parse()
	if *addr != "" {
		os.Exit(runRemote(*addr, *proto, flag.Args()))
	}

	db, err := quantumdb.Open(quantumdb.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	co := db.NewCoordinator()

	fmt.Println("quantum database shell — 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("qdb> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "exit" || line == "quit" {
			return
		}
		if line != "" {
			run(db, co, line)
		}
		fmt.Print("qdb> ")
	}
}

// runRemote executes one command against a remote qdbd — framed binary
// by default, JSON lines with -proto json — and returns the process
// exit code. The verb set is the read-side subset plus
// txn/batch/exec/ground — enough for scripting and for health checks
// against followers (`lag` is the one to poll).
func runRemote(addr, proto string, args []string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	if len(args) == 0 {
		return fail(fmt.Errorf("usage: qdbcli -addr host:port <ping|lag|pending|stats|peek|read|create|txn|batch|exec|ground|promote> [args]"))
	}
	var p server.Proto
	switch proto {
	case "binary":
		p = server.ProtoBinary
	case "json":
		p = server.ProtoJSON
	default:
		return fail(fmt.Errorf("unknown -proto %q (binary or json)", proto))
	}
	c, err := server.DialProto(addr, p, server.RetryPolicy{})
	if err != nil {
		return fail(err)
	}
	defer c.Close()
	cmd, rest := args[0], strings.Join(args[1:], " ")
	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			return fail(err)
		}
		fmt.Println("ok")
	case "lag":
		seq, applied, lag, err := c.Lag()
		if err != nil {
			return fail(err)
		}
		fmt.Printf("seq=%d applied=%d lag=%d\n", seq, applied, lag)
	case "promote":
		// Promote the follower at -addr to leader. "promote force" skips
		// the fence exchange — only for a leader that is known dead.
		force := rest == "force"
		if rest != "" && !force {
			return fail(fmt.Errorf("usage: promote [force]"))
		}
		term, seq, err := c.Promote(force)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("promoted %s: term=%d seq=%d\n", c.Addr(), term, seq)
	case "pending":
		n, err := c.Pending()
		if err != nil {
			return fail(err)
		}
		fmt.Println(n)
	case "stats":
		st, err := c.Stats()
		if err != nil {
			return fail(err)
		}
		fmt.Printf("%+v\n", st)
	case "peek", "snapread":
		rows, err := c.SnapRead(rest)
		if err != nil {
			return fail(err)
		}
		printWireRows(rows)
	case "read":
		rows, err := c.Query(rest)
		if err != nil {
			return fail(err)
		}
		m := make([]map[string]string, len(rows))
		for i, r := range rows {
			m[i] = make(map[string]string, len(r))
			for k, v := range r {
				m[i][k] = v.Quoted()
			}
		}
		printWireRows(m)
	case "create":
		name, cols, key, err := parseCreate(rest)
		if err != nil {
			return fail(err)
		}
		if err := c.CreateTable(server.TableSpec{Name: name, Columns: cols, Key: key}); err != nil {
			return fail(err)
		}
		fmt.Printf("created %s\n", name)
	case "txn":
		id, err := c.Submit(rest)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("committed txn %d\n", id)
	case "batch":
		// One amortized admission cycle server-side; transactions are
		// separated by ';' so each may contain commas.
		var txns []string
		for _, t := range strings.Split(rest, ";") {
			if t = strings.TrimSpace(t); t != "" {
				txns = append(txns, t)
			}
		}
		if len(txns) == 0 {
			return fail(fmt.Errorf("usage: batch <txn> [; <txn> ...]"))
		}
		ids, errs, err := c.SubmitBatch(txns)
		if err != nil {
			return fail(err)
		}
		code := 0
		for i := range txns {
			if errs[i] != nil {
				fmt.Printf("txn %d/%d: error: %v\n", i+1, len(txns), errs[i])
				code = 1
			} else {
				fmt.Printf("txn %d/%d: committed %d\n", i+1, len(txns), ids[i])
			}
		}
		return code
	case "exec":
		if err := c.Exec(rest); err != nil {
			return fail(err)
		}
		fmt.Println("ok")
	case "ground":
		if rest == "all" {
			if err := c.GroundAll(); err != nil {
				return fail(err)
			}
			fmt.Println("all grounded")
			return 0
		}
		id, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return fail(fmt.Errorf("usage: ground <id> | ground all"))
		}
		if err := c.Ground(id); err != nil {
			return fail(err)
		}
		fmt.Printf("grounded %d\n", id)
	default:
		return fail(fmt.Errorf("unknown remote command %q", cmd))
	}
	return 0
}

// printWireRows renders quoted-string wire rows with sorted keys, one
// row per line — stable output a smoke test can diff across servers.
func printWireRows(rows []map[string]string) {
	if len(rows) == 0 {
		fmt.Println("(no rows)")
		return
	}
	lines := make([]string, 0, len(rows))
	for _, row := range rows {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%s", k, row[k]))
		}
		lines = append(lines, strings.Join(parts, " "))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func run(db *quantumdb.DB, co *quantumdb.Coordinator, line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Print(`commands:
  create <Rel>(col, ...) [key i j ...]   create a relation
  exec  +R(...), -S(...)                 blind ground writes (checked)
  txn   <update> :-1 <body>              submit a resource transaction
  etxn  <tag> <partner> <txn>            submit an entangled transaction
  read  R(args), S(args)                 conjunctive query (collapses!)
  peek  R(args), S(args)                 snapshot query (committed state
                                         only — collapses nothing)
  ground <id> | ground all               force value assignment
  pending                                count pending transactions
  stats                                  engine counters (includes
                                         SnapshotReads, CheckpointPauseNs)
  metrics                                latency quantiles (p50/p95/p99)
                                         for every op, stage, and
                                         subsystem histogram
  demo                                   load a small travel world
  exit
`)
	case "create":
		name, cols, key, err := parseCreate(rest)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if err := db.CreateTable(quantumdb.Table{Name: name, Columns: cols, Key: key}); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("created %s\n", name)
	case "exec":
		if err := db.Exec(rest); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("ok")
	case "txn":
		id, err := db.Submit(rest)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("committed txn %d (pending: %d)\n", id, db.Pending())
	case "etxn":
		fields := strings.SplitN(rest, " ", 3)
		if len(fields) != 3 {
			fmt.Println("usage: etxn <tag> <partner> <txn>")
			return
		}
		id, err := co.Submit(fields[2], fields[0], fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("committed entangled txn %d (pending: %d, coordinated pairs: %d)\n",
			id, db.Pending(), co.CoordinatedPairs())
	case "read":
		rows, err := db.Query(rest)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
	case "peek":
		// Collapse-free read against a one-shot snapshot: pending
		// transactions stay superposed and are not visible.
		snap := db.Snapshot()
		rows, err := snap.Query(rest)
		snap.Release()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
	case "ground":
		if rest == "all" {
			if err := db.GroundAll(); err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Println("all grounded")
			return
		}
		id, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			fmt.Println("usage: ground <id> | ground all")
			return
		}
		if err := db.Ground(id); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("grounded %d\n", id)
	case "pending":
		fmt.Println(db.Pending())
	case "stats":
		fmt.Printf("%+v\n", db.Stats())
	case "metrics":
		printMetrics(db)
	case "demo":
		loadDemo(db)
	default:
		fmt.Printf("unknown command %q — try 'help'\n", cmd)
	}
}

// printMetrics renders every histogram in the engine's registry with
// count and interpolated quantiles; durations print humanized, raw
// histograms (scale 1, e.g. WAL batch bytes) print as integers.
func printMetrics(db *quantumdb.DB) {
	hists := db.Metrics().Histograms()
	any := false
	for _, h := range hists {
		if h.Snap.Count == 0 {
			continue
		}
		any = true
		name := h.Name
		if h.Labels != "" {
			name += "{" + h.Labels + "}"
		}
		format := func(v float64) string {
			if h.Scale != 1 {
				return time.Duration(v).Round(time.Microsecond).String()
			}
			return strconv.FormatInt(int64(v), 10)
		}
		fmt.Printf("%-64s n=%-7d p50=%-10s p95=%-10s p99=%-10s mean=%s\n",
			name, h.Snap.Count,
			format(h.Snap.Quantile(0.50)),
			format(h.Snap.Quantile(0.95)),
			format(h.Snap.Quantile(0.99)),
			format(h.Snap.Mean()))
	}
	if !any {
		fmt.Println("(no observations yet — run some txns/reads first)")
	}
}

func printRows(rows []quantumdb.Row) {
	if len(rows) == 0 {
		fmt.Println("(no rows)")
		return
	}
	for _, row := range rows {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, row[k]))
		}
		fmt.Println(strings.Join(parts, " "))
	}
}

func parseCreate(s string) (name string, cols []string, key []int, err error) {
	open := strings.Index(s, "(")
	closeIdx := strings.Index(s, ")")
	if open <= 0 || closeIdx < open {
		return "", nil, nil, fmt.Errorf("usage: create Rel(col, ...) [key i j ...]")
	}
	name = strings.TrimSpace(s[:open])
	for _, c := range strings.Split(s[open+1:closeIdx], ",") {
		cols = append(cols, strings.TrimSpace(c))
	}
	tail := strings.TrimSpace(s[closeIdx+1:])
	if tail != "" {
		if !strings.HasPrefix(tail, "key ") {
			return "", nil, nil, fmt.Errorf("unexpected %q after column list", tail)
		}
		for _, f := range strings.Fields(tail[4:]) {
			i, err := strconv.Atoi(f)
			if err != nil {
				return "", nil, nil, fmt.Errorf("bad key column %q", f)
			}
			key = append(key, i)
		}
	}
	return name, cols, key, nil
}

func loadDemo(db *quantumdb.DB) {
	tables := []quantumdb.Table{
		{Name: "Available", Columns: []string{"fno", "sno"}},
		{Name: "Bookings", Columns: []string{"name", "fno", "sno"}, Key: []int{1, 2}},
		{Name: "Adjacent", Columns: []string{"fno", "s1", "s2"}, Indexes: [][]int{{0, 1}, {0, 2}}},
	}
	for _, t := range tables {
		if err := db.CreateTable(t); err != nil {
			fmt.Println("demo:", err)
			return
		}
	}
	db.MustExec("+Available(123, '1A'), +Available(123, '1B'), +Available(123, '1C')")
	db.MustExec("+Available(123, '2A'), +Available(123, '2B'), +Available(123, '2C')")
	for _, p := range [][2]string{{"1A", "1B"}, {"1B", "1C"}, {"2A", "2B"}, {"2B", "2C"}} {
		db.MustExec(fmt.Sprintf("+Adjacent(123, '%s', '%s'), +Adjacent(123, '%s', '%s')",
			p[0], p[1], p[1], p[0]))
	}
	fmt.Println("demo loaded: flight 123 with 6 seats (2 rows), adjacency within rows")
	fmt.Println("try: txn -Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s)")
}
