package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/serverload"
)

// Benchmark-trajectory emission: `qdbbench -json DIR` writes
// BENCH_fig7.json, BENCH_submit.json, BENCH_read.json, BENCH_wal.json,
// and BENCH_server.json — machine-readable ns/op, allocs/op, and domain
// throughput for the headline workloads (grounding-heavy Fig7, the
// parallel-admission submit storm, the snapshot read storm, durable
// grounding, and the server data plane). CI
// uploads them as artifacts on every run, so the performance trajectory
// of the repository is a downloadable series instead of numbers buried
// in logs. The shapes match the in-repo benchmarks (bench_test.go), not
// paper scale: trajectories need comparability run-to-run more than
// absolute magnitude.

// benchPoint is one measured configuration.
type benchPoint struct {
	Name        string         `json:"name"`
	NsPerOp     int64          `json:"ns_per_op"`
	AllocsPerOp int64          `json:"allocs_per_op"`
	BytesPerOp  int64          `json:"bytes_per_op"`
	Runs        int            `json:"runs"`
	Throughput  float64        `json:"throughput,omitempty"` // domain ops/s (submits/s for the storm)
	Counters    map[string]int `json:"counters,omitempty"`
	// Latencies carries the last run's per-op/stage latency quantiles
	// (nanoseconds) from the engine's telemetry registry — the tails
	// behind the mean the other fields report.
	Latencies map[string]bench.Quantiles `json:"latencies,omitempty"`
}

// benchFile is one BENCH_*.json document.
type benchFile struct {
	Workload  string       `json:"workload"`
	Generated string       `json:"generated"` // RFC3339
	Points    []benchPoint `json:"points"`
}

// emitTrajectory writes every trajectory file into dir.
func emitTrajectory(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := emitFig7(dir); err != nil {
		return err
	}
	if err := emitSubmit(dir); err != nil {
		return err
	}
	if err := emitRead(dir); err != nil {
		return err
	}
	if err := emitWALSync(dir); err != nil {
		return err
	}
	return emitServer(dir)
}

func emitFig7(dir string) error {
	cfg := bench.Fig7Config{
		MinFlights: 2, MaxFlights: 6, FlightStep: 2,
		RowsPerFlight: 10, Ks: []int{4, 8, 12}, Seed: 1,
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFig7(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc := benchFile{
		Workload:  "fig7",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Points: []benchPoint{{
			Name:        "BenchmarkFig7",
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Runs:        res.N,
		}},
	}
	return writeBenchFile(filepath.Join(dir, "BENCH_fig7.json"), doc)
}

func emitSubmit(dir string) error {
	doc := benchFile{
		Workload:  "parallel-submit",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	// The canonical shape list lives in internal/bench (SubmitShapes) and
	// is shared with BenchmarkParallelSubmit, so the emitted point names
	// always measure exactly what the in-repo benchmark measures.
	for _, s := range bench.SubmitShapes() {
		var (
			elapsed   time.Duration
			submitted int
			last      *bench.SubmitResult
		)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := bench.RunParallelSubmit(s.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				elapsed += r.Elapsed
				submitted += r.Submitted
				last = r
			}
		})
		pt := benchPoint{
			Name:        s.Name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Runs:        res.N,
		}
		if elapsed > 0 {
			pt.Throughput = float64(submitted) / elapsed.Seconds()
		}
		if last != nil {
			pt.Counters = map[string]int{
				"optimistic_admissions": last.Stats.OptimisticAdmissions,
				"admission_conflicts":   last.Stats.AdmissionConflicts,
				"admission_retries":     last.Stats.AdmissionRetries,
				"serial_fallbacks":      last.Stats.SerialFallbacks,
				"parallel_solves":       last.Stats.ParallelSolves,
			}
			pt.Latencies = last.Latencies
		}
		doc.Points = append(doc.Points, pt)
	}
	return writeBenchFile(filepath.Join(dir, "BENCH_submit.json"), doc)
}

func emitRead(dir string) error {
	doc := benchFile{
		Workload:  "parallel-read",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	// Shapes shared with BenchmarkParallelRead (bench.ReadShapes):
	// collapse-free snapshot reads swept over reader counts while an
	// applier churns blind writes, plus the applier-idle baseline the
	// racing latencies are judged against. The counters record that every
	// read took the snapshot path and that the applier kept moving — the
	// structural half of the gate-free claim.
	for _, s := range bench.ReadShapes() {
		var (
			elapsed time.Duration
			reads   int
			last    *bench.ReadResult
		)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := bench.RunParallelRead(s.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				elapsed += r.Elapsed
				reads += r.Reads
				last = r
			}
		})
		pt := benchPoint{
			Name:        s.Name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Runs:        res.N,
		}
		if elapsed > 0 {
			pt.Throughput = float64(reads) / elapsed.Seconds()
		}
		if last != nil {
			pt.Counters = map[string]int{
				"snapshot_reads": last.Stats.SnapshotReads,
				"applier_writes": last.ApplierWrites,
			}
			pt.Latencies = last.Latencies
		}
		doc.Points = append(doc.Points, pt)
	}
	return writeBenchFile(filepath.Join(dir, "BENCH_read.json"), doc)
}

func emitWALSync(dir string) error {
	doc := benchFile{
		Workload:  "wal-sync-grounding",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	// Shapes shared with BenchmarkGroundWALSync (bench.WALSyncShapes):
	// durable grounding throughput swept over WAL segment counts, with the
	// log's structural counters attached so the trajectory shows WHERE the
	// batches landed, not just how fast.
	for _, s := range bench.WALSyncShapes() {
		var (
			ground   time.Duration
			grounded int
			last     *bench.WALSyncResult
		)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := bench.RunWALSync(s.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				ground += r.Ground
				grounded += r.Grounded
				last = r
			}
		})
		pt := benchPoint{
			Name:        s.Name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Runs:        res.N,
		}
		if ground > 0 {
			pt.Throughput = float64(grounded) / ground.Seconds()
		}
		if last != nil {
			syncs := 0
			for _, n := range last.Log.Syncs {
				syncs += int(n)
			}
			pt.Counters = map[string]int{
				"segments":        last.Log.Segments,
				"active_segments": last.ActiveSegments(),
				"fsyncs":          syncs,
				"group_commits":   int(last.Log.GroupCommits),
			}
			pt.Latencies = last.Latencies
		}
		doc.Points = append(doc.Points, pt)
	}
	return writeBenchFile(filepath.Join(dir, "BENCH_wal.json"), doc)
}

func emitServer(dir string) error {
	doc := benchFile{
		Workload:  "server-data-plane",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	// Shapes shared with BenchmarkServerSubmit (serverload.ServerShapes):
	// the JSON-lines sync baseline, the pipelined binary protocol, and
	// pipelined binary with batched admission, all over the same
	// many-connection submit storm. The latencies here are
	// CLIENT-observed request round trips — the number a caller feels —
	// complementing the server-side histograms the metrics endpoint
	// exports.
	for _, s := range serverload.ServerShapes() {
		var (
			elapsed time.Duration
			txns    int
			last    *serverload.ServerResult
		)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := serverload.RunServerLoad(s.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				elapsed += r.Elapsed
				txns += r.Txns
				last = r
			}
		})
		pt := benchPoint{
			Name:        s.Name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Runs:        res.N,
		}
		if elapsed > 0 {
			pt.Throughput = float64(txns) / elapsed.Seconds()
		}
		if last != nil {
			pt.Counters = map[string]int{
				"conns":    last.Config.Conns,
				"window":   last.Config.Window,
				"batch":    last.Config.Batch,
				"requests": last.Requests,
				"sheds":    last.Sheds,
			}
			pt.Latencies = map[string]bench.Quantiles{"client_request": last.Lat}
		}
		doc.Points = append(doc.Points, pt)
	}
	return writeBenchFile(filepath.Join(dir, "BENCH_server.json"), doc)
}

func writeBenchFile(path string, doc benchFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
