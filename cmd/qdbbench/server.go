package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/bench/serverload"
)

// Server data-plane experiment. Two modes:
//
//	qdbbench -exp server                      # in-process protocol sweep
//	qdbbench -exp server -addr HOST:PORT ...  # open-loop against a running qdbd
//
// External mode is what the CI server-load smoke job runs: it drives a
// fixed request rate at a booted daemon, reports the generator's
// client-observed latencies, and — when -metrics-url points at the
// daemon's /debug/vars — gates on the SERVER-side op-latency p99 and
// the shed counter, turning "the data plane keeps up at nominal load"
// into an exit code.

func runServerExp(cfg serverload.ServerConfig, addr, metricsURL string,
	p99Max time.Duration, maxSheds int64) error {
	if addr == "" {
		return renderServerSweep()
	}
	res, err := serverload.DriveServerLoad(addr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("server load: %d requests (%d txns) in %v over %d conns\n",
		res.Requests, res.Txns, res.Elapsed.Round(time.Millisecond), cfg.Conns)
	fmt.Printf("throughput: %.0f txn/s\n", res.Throughput())
	fmt.Printf("client latency: p50=%v p99=%v\n",
		time.Duration(res.Lat.P50).Round(time.Microsecond),
		time.Duration(res.Lat.P99).Round(time.Microsecond))
	fmt.Printf("client-observed sheds: %d\n", res.Sheds)
	if metricsURL == "" {
		return nil
	}
	p99, sheds, err := fetchServerMetrics(metricsURL)
	if err != nil {
		return err
	}
	fmt.Printf("server op p99: %v\n", p99.Round(time.Microsecond))
	fmt.Printf("server sheds: %d\n", sheds)
	if p99Max > 0 && p99 > p99Max {
		return fmt.Errorf("server op p99 %v exceeds gate %v", p99, p99Max)
	}
	if maxSheds >= 0 && sheds > maxSheds {
		return fmt.Errorf("server shed %d requests, gate allows %d", sheds, maxSheds)
	}
	return nil
}

// renderServerSweep measures the canonical protocol shapes in-process
// and prints the ladder.
func renderServerSweep() error {
	fmt.Printf("Server data plane: %-28s%12s%12s%12s%8s\n",
		"shape", "txn/s", "p50", "p99", "sheds")
	for _, s := range serverload.ServerShapes() {
		r, err := serverload.RunServerLoad(s.Cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		fmt.Printf("%43s%12.0f%12s%12s%8d\n",
			s.Name, r.Throughput(),
			time.Duration(r.Lat.P50).Round(time.Microsecond),
			time.Duration(r.Lat.P99).Round(time.Microsecond),
			r.Sheds)
	}
	return nil
}

// fetchServerMetrics pulls the daemon's /debug/vars snapshot and
// extracts the worst per-op p99 of qdb_server_op_duration_seconds
// (nanosecond-native histograms) plus the shed counter.
func fetchServerMetrics(url string) (p99 time.Duration, sheds int64, err error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return 0, 0, fmt.Errorf("fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("fetching %s: HTTP %d", url, resp.StatusCode)
	}
	var doc struct {
		Metrics    map[string]int64 `json:"metrics"`
		Histograms []struct {
			Name   string  `json:"name"`
			Labels string  `json:"labels"`
			Count  int64   `json:"count"`
			P99    float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, 0, fmt.Errorf("decoding %s: %w", url, err)
	}
	found := false
	for _, h := range doc.Histograms {
		if h.Name != "qdb_server_op_duration_seconds" || h.Count == 0 {
			continue
		}
		found = true
		if d := time.Duration(h.P99); d > p99 {
			p99 = d
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("%s has no qdb_server_op_duration_seconds samples", url)
	}
	sheds = doc.Metrics["qdb_server_shed_total"]
	return p99, sheds, nil
}
