// Command qdbbench regenerates the evaluation of "Quantum Databases"
// (CIDR 2013): Table 1, Figures 5-6 (arrival orders), Figure 7 + Table 2
// (scalability vs k), and Figures 8-9 (mixed read workloads).
//
//	qdbbench -exp all            # everything at paper scale
//	qdbbench -exp fig7 -quick    # reduced scale for a fast look
//
// Absolute times depend on the host; the shapes (who wins, slopes,
// crossovers) are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/serverload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig5|fig6|fig7|table2|fig8|fig9|walsync|server|all")
	quick := flag.Bool("quick", false, "run at reduced scale (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "workload shuffle seed")
	jsonDir := flag.String("json", "", "emit the benchmark trajectory (BENCH_fig7.json, BENCH_submit.json, BENCH_read.json, BENCH_wal.json, BENCH_server.json) into this directory and exit")

	// -exp server external mode: drive an already-running qdbd instead
	// of an in-process sweep, optionally gating on its metrics.
	addr := flag.String("addr", "", "server experiment: drive this qdbd address instead of booting in-process")
	conns := flag.Int("conns", 8, "server experiment: connection count")
	window := flag.Int("window", 4, "server experiment: pipelined requests in flight per connection")
	batch := flag.Int("batch", 1, "server experiment: transactions per wire request (batch verb when > 1)")
	rate := flag.Float64("rate", 0, "server experiment: open-loop requests/second across all connections (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "server experiment: open-loop run length")
	metricsURL := flag.String("metrics-url", "", "server experiment: qdbd /debug/vars URL for server-side gates")
	p99Max := flag.Duration("p99-max", 0, "server experiment: fail if server op p99 exceeds this (0 = no gate)")
	maxSheds := flag.Int64("max-sheds", -1, "server experiment: fail if qdb_server_shed_total exceeds this (-1 = no gate)")
	flag.Parse()

	if *jsonDir != "" {
		if err := emitTrajectory(*jsonDir); err != nil {
			fail(err)
		}
		return
	}

	want := func(name string) bool {
		return *exp == "all" || strings.Contains(*exp, name)
	}
	start := time.Now()

	if want("table1") {
		cfg := bench.DefaultTable1()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows = 10
		}
		res, err := bench.RunTable1(cfg)
		fail(err)
		res.Render(os.Stdout)
		fmt.Println()
	}

	if want("fig5") || want("fig6") {
		cfg := bench.DefaultFig56()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows = 10
		}
		res, err := bench.RunFig56(cfg)
		fail(err)
		if want("fig5") {
			res.RenderFig5(os.Stdout)
			fmt.Println()
		}
		if want("fig6") {
			res.RenderFig6(os.Stdout)
			fmt.Println()
		}
	}

	if want("fig7") || want("table2") {
		cfg := bench.DefaultFig7()
		cfg.Seed = *seed
		if *quick {
			cfg = bench.Fig7Config{MinFlights: 2, MaxFlights: 10, FlightStep: 2,
				RowsPerFlight: 10, Ks: []int{4, 8, 12}, Seed: *seed}
		}
		res, err := bench.RunFig7(cfg)
		fail(err)
		if want("fig7") {
			res.RenderFig7(os.Stdout)
			fmt.Println()
		}
		if want("table2") {
			res.RenderTable2(os.Stdout)
			fmt.Println()
		}
	}

	if want("fig8") || want("fig9") {
		cfg := bench.DefaultFig89()
		cfg.Seed = *seed
		if *quick {
			cfg = bench.Fig89Config{Flights: 4, RowsPerFlight: 10, Total: 120,
				ReadPcts: []int{0, 30, 60, 90}, Ks: []int{4, 8}, Seed: *seed}
		}
		res, err := bench.RunFig89(cfg)
		fail(err)
		if want("fig8") {
			res.RenderFig8(os.Stdout)
			fmt.Println()
		}
		if want("fig9") {
			res.RenderFig9(os.Stdout)
			fmt.Println()
		}
	}

	if want("walsync") {
		cfg := bench.DefaultWALSync()
		if *quick {
			cfg.Partitions, cfg.TxnsPerPartition, cfg.RowsPerFlight = 4, 3, 10
		}
		rs, err := bench.RunWALSyncSweep(cfg, []int{1, 2, 4, 8})
		fail(err)
		bench.RenderWALSync(os.Stdout, rs)
		fmt.Println()
	}

	if *exp == "server" || (want("server") && *exp != "all") {
		cfg := serverload.ServerConfig{
			Binary: true, Conns: *conns, Window: *window, Batch: *batch,
			Rate: *rate, Duration: *duration,
		}
		fail(runServerExp(cfg, *addr, *metricsURL, *p99Max, *maxSheds))
		fmt.Println()
	} else if want("server") { // -exp all: in-process sweep only
		fail(renderServerSweep())
		fmt.Println()
	}

	if want("phase") {
		cfg := bench.DefaultPhase()
		cfg.Seed = *seed
		if *quick {
			cfg.Rows = 10
		}
		res, err := bench.RunPhase(cfg)
		fail(err)
		res.Render(os.Stdout)
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qdbbench:", err)
		os.Exit(1)
	}
}
